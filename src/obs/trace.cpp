#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <ostream>

#include "core/sync.hpp"

namespace sct::obs {

namespace {

/// Per-thread span storage. Owned by the global registry (not the thread),
/// so snapshots keep working after the thread exits; only the owning thread
/// appends, everyone else reads under `mutex`.
struct ThreadBuffer {
  sct::Mutex mutex;
  /// capacity kTraceRingCapacity, append-grow
  std::vector<TraceEvent> ring SCT_GUARDED_BY(mutex);
  /// overwrite cursor once the ring is full
  std::size_t head SCT_GUARDED_BY(mutex) = 0;
  /// events overwritten so far
  std::uint64_t dropped SCT_GUARDED_BY(mutex) = 0;
  /// Immutable after registration (written once before the buffer is
  /// published into the registry), so reads need no lock.
  std::uint32_t tid = 0;
  /// Current nesting depth: owner-thread-only by construction — enter/exit
  /// run on the owning thread, never concurrently — so it is deliberately
  /// unguarded (DESIGN.md §16).
  std::uint32_t depth = 0;
};

struct TraceRegistry {
  // Lock order (DESIGN.md §16): registry mutex, then a buffer's mutex.
  // Only snapshot/clear take both; the hot path takes the buffer lock only.
  sct::Mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers SCT_GUARDED_BY(mutex);
};

TraceRegistry& registry() {
  static TraceRegistry* instance = new TraceRegistry;  // never destroyed:
  // worker threads may record during static teardown of the main thread.
  return *instance;
}

ThreadBuffer& threadBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    TraceRegistry& reg = registry();
    const sct::LockGuard lock(reg.mutex);
    raw->tid = static_cast<std::uint32_t>(reg.buffers.size());
    reg.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

std::chrono::steady_clock::time_point traceEpoch() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

namespace detail {

std::atomic<bool> g_tracing{false};

std::uint64_t nowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - traceEpoch())
          .count());
}

std::uint32_t enterSpan() noexcept { return threadBuffer().depth++; }

void exitSpan(const char* name, std::uint64_t startNs,
              std::uint32_t depth) noexcept {
  const std::uint64_t endNs = nowNs();
  ThreadBuffer& buffer = threadBuffer();
  buffer.depth = depth;  // LIFO close of the matching enterSpan()
  TraceEvent event;
  event.name = name;
  event.startNs = startNs;
  event.durNs = endNs >= startNs ? endNs - startNs : 0;
  event.tid = buffer.tid;
  event.depth = depth;
  const sct::LockGuard lock(buffer.mutex);
  if (buffer.ring.size() < kTraceRingCapacity) {
    buffer.ring.push_back(event);
  } else {
    buffer.ring[buffer.head] = event;
    buffer.head = (buffer.head + 1) % kTraceRingCapacity;
    ++buffer.dropped;
  }
}

}  // namespace detail

void setTracingEnabled(bool on) noexcept {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

TraceSnapshot traceSnapshot() {
  TraceSnapshot out;
  TraceRegistry& reg = registry();
  const sct::LockGuard regLock(reg.mutex);
  for (const std::unique_ptr<ThreadBuffer>& buffer : reg.buffers) {
    const sct::LockGuard lock(buffer->mutex);
    // Ring order: [head, end) is the oldest segment once wrapped.
    for (std::size_t i = buffer->head; i < buffer->ring.size(); ++i) {
      out.events.push_back(buffer->ring[i]);
    }
    for (std::size_t i = 0; i < buffer->head; ++i) {
      out.events.push_back(buffer->ring[i]);
    }
    out.dropped += buffer->dropped;
  }
  // Deterministic export order; parents sort before their children because
  // a child opens later (same-start ties resolved by depth).
  std::sort(out.events.begin(), out.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.startNs != b.startNs) return a.startNs < b.startNs;
              return a.depth < b.depth;
            });
  return out;
}

void clearTrace() noexcept {
  TraceRegistry& reg = registry();
  const sct::LockGuard regLock(reg.mutex);
  for (const std::unique_ptr<ThreadBuffer>& buffer : reg.buffers) {
    const sct::LockGuard lock(buffer->mutex);
    buffer->ring.clear();
    buffer->head = 0;
    buffer->dropped = 0;
  }
}

namespace {

void writeJsonString(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
          << "0123456789abcdef"[c & 0xf];
    } else {
      out << c;
    }
  }
  out << '"';
}

/// Chrome trace timestamps are microseconds; emit ns-precision decimals
/// without float formatting so output is locale- and libc-independent.
void writeMicros(std::ostream& out, std::uint64_t ns) {
  out << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
      << static_cast<char>('0' + (ns / 10) % 10)
      << static_cast<char>('0' + ns % 10);
}

}  // namespace

void writeChromeTrace(std::ostream& out, const TraceSnapshot& snapshot) {
  out << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"droppedEvents\":"
      << snapshot.dropped << "},\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : snapshot.events) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":";
    writeJsonString(out, event.name);
    out << ",\"cat\":\"sct\",\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid
        << ",\"ts\":";
    writeMicros(out, event.startNs);
    out << ",\"dur\":";
    writeMicros(out, event.durNs);
    out << ",\"args\":{\"depth\":" << event.depth << "}}";
  }
  out << "\n]}\n";
}

}  // namespace sct::obs
