#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "core/sync.hpp"

namespace sct::obs {

namespace detail {
std::atomic<bool> g_metrics{false};
}  // namespace detail

void setMetricsEnabled(bool on) noexcept {
  detail::g_metrics.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), counts_(bounds.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("histogram bounds must be sorted");
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::counterValue(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

bool MetricsSnapshot::hasCounter(std::string_view name) const {
  return std::any_of(counters.begin(), counters.end(),
                     [&](const CounterValue& c) { return c.name == name; });
}

// std::map keys give snapshot() its sorted-by-name order for free;
// unique_ptr values keep instrument addresses stable across rehash-free
// inserts (references handed to call sites must never move).
struct MetricsRegistry::Impl {
  // Registration-only mutex (DESIGN.md §16): the hot path updates the
  // instruments' own atomics lock-free; this leaf lock serializes the
  // find-or-create maps and snapshot(). Instrument *pointees* are published
  // once under the lock and immutable afterwards, so handing out plain
  // references is safe.
  mutable sct::Mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      SCT_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
      SCT_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      SCT_GUARDED_BY(mutex);
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry;  // never destroyed:
  // instrumented worker threads may outlive main()'s static teardown.
  return *instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const sct::LockGuard lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return *it->second;
  if (impl_->gauges.contains(name) || impl_->histograms.contains(name)) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *impl_->counters.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const sct::LockGuard lock(impl_->mutex);
  const auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end()) return *it->second;
  if (impl_->counters.contains(name) || impl_->histograms.contains(name)) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  const sct::LockGuard lock(impl_->mutex);
  const auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) {
    const std::vector<double>& have = it->second->bounds();
    if (!std::equal(have.begin(), have.end(), bounds.begin(), bounds.end())) {
      throw std::logic_error("histogram '" + std::string(name) +
                             "' re-registered with different bounds");
    }
    return *it->second;
  }
  if (impl_->counters.contains(name) || impl_->gauges.contains(name)) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *impl_->histograms
              .emplace(std::string(name), std::make_unique<Histogram>(bounds))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  const sct::LockGuard lock(impl_->mutex);
  out.counters.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters) {
    out.counters.push_back({name, counter->value()});
  }
  out.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges) {
    out.gauges.push_back({name, gauge->value()});
  }
  out.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, histogram] : impl_->histograms) {
    MetricsSnapshot::HistogramValue v;
    v.name = name;
    v.bounds = histogram->bounds();
    v.counts = histogram->counts();
    v.count = histogram->count();
    v.sum = histogram->sum();
    out.histograms.push_back(std::move(v));
  }
  return out;
}

void MetricsRegistry::resetValues() noexcept {
  const sct::LockGuard lock(impl_->mutex);
  for (const auto& [name, counter] : impl_->counters) counter->reset();
  for (const auto& [name, histogram] : impl_->histograms) histogram->reset();
}

namespace {

void writeJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
          << "0123456789abcdef"[c & 0xf];
    } else {
      out << c;
    }
  }
  out << '"';
}

/// Round-trippable double rendering, matching the text serializers' %.17g
/// canonical precision. JSON needs a fraction or exponent for non-integral
/// readers, but %.17g already emits integers bare — fine for JSON numbers.
void writeDouble(std::ostream& out, double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  out << buffer;
}

}  // namespace

void writeMetricsJson(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "{\n  \"schema\": \"sct-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const MetricsSnapshot::CounterValue& c : snapshot.counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    writeJsonString(out, c.name);
    out << ": " << c.value;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const MetricsSnapshot::GaugeValue& g : snapshot.gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    writeJsonString(out, g.name);
    out << ": ";
    writeDouble(out, g.value);
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const MetricsSnapshot::HistogramValue& h : snapshot.histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    writeJsonString(out, h.name);
    out << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out << ", ";
      writeDouble(out, h.bounds[i]);
    }
    out << "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out << ", ";
      out << h.counts[i];
    }
    out << "], \"count\": " << h.count << ", \"sum\": ";
    writeDouble(out, h.sum);
    out << "}";
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

}  // namespace sct::obs
