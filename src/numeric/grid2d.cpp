#include "numeric/grid2d.hpp"

namespace sct::numeric {

bool isStrictlyIncreasing(const Axis& axis) noexcept {
  if (axis.empty()) return false;
  for (std::size_t i = 1; i < axis.size(); ++i) {
    if (axis[i] <= axis[i - 1]) return false;
  }
  return true;
}

}  // namespace sct::numeric
