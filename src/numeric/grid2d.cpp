#include "numeric/grid2d.hpp"

#include <algorithm>

namespace sct::numeric {

bool isStrictlyIncreasing(const Axis& axis) noexcept {
  if (axis.empty()) return false;
  for (std::size_t i = 1; i < axis.size(); ++i) {
    if (axis[i] <= axis[i - 1]) return false;
  }
  return true;
}

std::size_t bracket(const Axis& axis, double x) noexcept {
  assert(axis.size() >= 2);
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  if (it == axis.begin()) return 0;
  std::size_t idx = static_cast<std::size_t>(it - axis.begin()) - 1;
  return std::min(idx, axis.size() - 2);
}

}  // namespace sct::numeric
