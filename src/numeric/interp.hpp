#pragma once
// Bilinear interpolation over a look-up table (paper section V.A,
// eqs. (2)-(4), Fig. 3). Given load L and slew S between grid breakpoints,
// the value X is interpolated first along the load axis (P1, P2) and then
// along the slew axis.

#include "numeric/grid_batch.hpp"

namespace sct::numeric {

/// Behaviour outside the axis range.
enum class EdgePolicy {
  kClamp,        ///< clamp the query to the axis range
  kExtrapolate,  ///< linearly extrapolate the boundary segment
};

/// Bilinear interpolation of grid(slewAxis x loadAxis) at (slew, load).
/// Rows of the grid follow slewAxis, columns follow loadAxis; both axes must
/// be strictly increasing with at least one entry. Single-entry axes
/// degenerate to nearest-value lookup along that axis.
[[nodiscard]] double bilinear(const Axis& slewAxis, const Axis& loadAxis,
                              const Grid2d& grid, double slew, double load,
                              EdgePolicy policy = EdgePolicy::kClamp) noexcept;

/// One-dimensional linear interpolation helper used by bilinear(); exposed
/// because slope-threshold code interpolates single rows/columns too.
[[nodiscard]] double linear(const Axis& axis, std::span<const double> values,
                            double x,
                            EdgePolicy policy = EdgePolicy::kClamp) noexcept;

/// Precomputed bilinear coordinates: the axis brackets and interpolation
/// weights of one (slew, load) query. Tables characterized on the same
/// axes (the rise/fall delay and transition tables of one timing arc) can
/// share a single axis search and reuse the weights for every grid,
/// which removes the dominant cost of repeated lookups at one operating
/// point. apply() reproduces bilinear() bit-for-bit.
struct InterpCoords {
  std::size_t row = 0;    ///< slew-axis bracket index
  std::size_t col = 0;    ///< load-axis bracket index
  double rowWeight = 0;   ///< weight of row+1 along the slew axis
  double colWeight = 0;   ///< weight of col+1 along the load axis
  double rowWeightC = 1;  ///< hoisted complement 1 - rowWeight
  double colWeightC = 1;  ///< hoisted complement 1 - colWeight
  bool singleRow = true;  ///< degenerate (size-1) slew axis
  bool singleCol = true;  ///< degenerate (size-1) load axis

  // The complements are computed once in interpCoords() rather than inline
  // per row, so the scalar apply() and the batched applyBatch() share the
  // exact same rounded weight pair — the precondition for their bit-identity.

  /// Interpolates a grid shaped like the axes the coords were built from.
  [[nodiscard]] double apply(const Grid2d& grid) const noexcept {
    if (singleRow && singleCol) return grid.at(0, 0);
    const auto rowInterp = [&](std::size_t r) {
      if (singleCol) return grid.at(r, 0);
      return grid.at(r, col) * colWeightC + grid.at(r, col + 1) * colWeight;
    };
    if (singleRow) return rowInterp(0);
    const double p1 = rowInterp(row);
    const double p2 = rowInterp(row + 1);
    return p1 * rowWeightC + p2 * rowWeight;
  }

  /// Batched apply(): one coordinate search fans out over every instance of
  /// the batch. out[k] is bit-identical to apply() on instance k's grid —
  /// the per-instance expression tree is the same, only the loop order
  /// changed, and the contiguous instance-innermost loops carry no branches
  /// so they autovectorize.
  void applyBatch(const GridBatch& grids, std::span<double> out) const noexcept {
    const std::size_t n = grids.instances();
    assert(out.size() == n);
    if (singleRow && singleCol) {
      const std::span<const double> c00 = grids.cell(0, 0);
      for (std::size_t k = 0; k < n; ++k) out[k] = c00[k];
      return;
    }
    if (singleRow) {
      const std::span<const double> c0 = grids.cell(0, col);
      const std::span<const double> c1 = grids.cell(0, col + 1);
      for (std::size_t k = 0; k < n; ++k) {
        out[k] = c0[k] * colWeightC + c1[k] * colWeight;
      }
      return;
    }
    if (singleCol) {
      const std::span<const double> r0 = grids.cell(row, 0);
      const std::span<const double> r1 = grids.cell(row + 1, 0);
      for (std::size_t k = 0; k < n; ++k) {
        out[k] = r0[k] * rowWeightC + r1[k] * rowWeight;
      }
      return;
    }
    const std::span<const double> c00 = grids.cell(row, col);
    const std::span<const double> c01 = grids.cell(row, col + 1);
    const std::span<const double> c10 = grids.cell(row + 1, col);
    const std::span<const double> c11 = grids.cell(row + 1, col + 1);
    for (std::size_t k = 0; k < n; ++k) {
      out[k] = (c00[k] * colWeightC + c01[k] * colWeight) * rowWeightC +
               (c10[k] * colWeightC + c11[k] * colWeight) * rowWeight;
    }
  }
};

/// Resolves the bracket/weight coordinates of (slew, load) on a shared axis
/// pair. bilinear(a, l, g, s, x) == interpCoords(a, l, s, x).apply(g) for
/// every grid g characterized on the same axes.
[[nodiscard]] InterpCoords interpCoords(
    const Axis& slewAxis, const Axis& loadAxis, double slew, double load,
    EdgePolicy policy = EdgePolicy::kClamp) noexcept;

/// Bilinear interpolation of a whole batch of grids sharing one axis pair:
/// out[k] == bilinear(slewAxis, loadAxis, grid_k, slew, load, policy)
/// bit-for-bit, with a single axis search for the batch.
inline void batchedBilinear(const Axis& slewAxis, const Axis& loadAxis,
                            const GridBatch& grids, double slew, double load,
                            std::span<double> out,
                            EdgePolicy policy = EdgePolicy::kClamp) noexcept {
  assert(grids.rows() == slewAxis.size() && grids.cols() == loadAxis.size());
  interpCoords(slewAxis, loadAxis, slew, load, policy).applyBatch(grids, out);
}

}  // namespace sct::numeric
