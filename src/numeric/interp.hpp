#pragma once
// Bilinear interpolation over a look-up table (paper section V.A,
// eqs. (2)-(4), Fig. 3). Given load L and slew S between grid breakpoints,
// the value X is interpolated first along the load axis (P1, P2) and then
// along the slew axis.

#include "numeric/grid2d.hpp"

namespace sct::numeric {

/// Behaviour outside the axis range.
enum class EdgePolicy {
  kClamp,        ///< clamp the query to the axis range
  kExtrapolate,  ///< linearly extrapolate the boundary segment
};

/// Bilinear interpolation of grid(slewAxis x loadAxis) at (slew, load).
/// Rows of the grid follow slewAxis, columns follow loadAxis; both axes must
/// be strictly increasing with at least one entry. Single-entry axes
/// degenerate to nearest-value lookup along that axis.
[[nodiscard]] double bilinear(const Axis& slewAxis, const Axis& loadAxis,
                              const Grid2d& grid, double slew, double load,
                              EdgePolicy policy = EdgePolicy::kClamp) noexcept;

/// One-dimensional linear interpolation helper used by bilinear(); exposed
/// because slope-threshold code interpolates single rows/columns too.
[[nodiscard]] double linear(const Axis& axis, std::span<const double> values,
                            double x,
                            EdgePolicy policy = EdgePolicy::kClamp) noexcept;

}  // namespace sct::numeric
