#pragma once
// Bilinear interpolation over a look-up table (paper section V.A,
// eqs. (2)-(4), Fig. 3). Given load L and slew S between grid breakpoints,
// the value X is interpolated first along the load axis (P1, P2) and then
// along the slew axis.

#include "numeric/grid2d.hpp"

namespace sct::numeric {

/// Behaviour outside the axis range.
enum class EdgePolicy {
  kClamp,        ///< clamp the query to the axis range
  kExtrapolate,  ///< linearly extrapolate the boundary segment
};

/// Bilinear interpolation of grid(slewAxis x loadAxis) at (slew, load).
/// Rows of the grid follow slewAxis, columns follow loadAxis; both axes must
/// be strictly increasing with at least one entry. Single-entry axes
/// degenerate to nearest-value lookup along that axis.
[[nodiscard]] double bilinear(const Axis& slewAxis, const Axis& loadAxis,
                              const Grid2d& grid, double slew, double load,
                              EdgePolicy policy = EdgePolicy::kClamp) noexcept;

/// One-dimensional linear interpolation helper used by bilinear(); exposed
/// because slope-threshold code interpolates single rows/columns too.
[[nodiscard]] double linear(const Axis& axis, std::span<const double> values,
                            double x,
                            EdgePolicy policy = EdgePolicy::kClamp) noexcept;

/// Precomputed bilinear coordinates: the axis brackets and interpolation
/// weights of one (slew, load) query. Tables characterized on the same
/// axes (the rise/fall delay and transition tables of one timing arc) can
/// share a single axis search and reuse the weights for every grid,
/// which removes the dominant cost of repeated lookups at one operating
/// point. apply() reproduces bilinear() bit-for-bit.
struct InterpCoords {
  std::size_t row = 0;   ///< slew-axis bracket index
  std::size_t col = 0;   ///< load-axis bracket index
  double rowWeight = 0;  ///< weight of row+1 along the slew axis
  double colWeight = 0;  ///< weight of col+1 along the load axis
  bool singleRow = true; ///< degenerate (size-1) slew axis
  bool singleCol = true; ///< degenerate (size-1) load axis

  /// Interpolates a grid shaped like the axes the coords were built from.
  [[nodiscard]] double apply(const Grid2d& grid) const noexcept {
    if (singleRow && singleCol) return grid.at(0, 0);
    const auto rowInterp = [&](std::size_t r) {
      if (singleCol) return grid.at(r, 0);
      return grid.at(r, col) * (1.0 - colWeight) +
             grid.at(r, col + 1) * colWeight;
    };
    if (singleRow) return rowInterp(0);
    const double p1 = rowInterp(row);
    const double p2 = rowInterp(row + 1);
    return p1 * (1.0 - rowWeight) + p2 * rowWeight;
  }
};

/// Resolves the bracket/weight coordinates of (slew, load) on a shared axis
/// pair. bilinear(a, l, g, s, x) == interpCoords(a, l, s, x).apply(g) for
/// every grid g characterized on the same axes.
[[nodiscard]] InterpCoords interpCoords(
    const Axis& slewAxis, const Axis& loadAxis, double slew, double load,
    EdgePolicy policy = EdgePolicy::kClamp) noexcept;

}  // namespace sct::numeric
