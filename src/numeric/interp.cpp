#include "numeric/interp.hpp"

#include <algorithm>
#include <cassert>

namespace sct::numeric {
namespace {

double clampToAxis(const Axis& axis, double x) noexcept {
  return std::clamp(x, axis.front(), axis.back());
}

/// Interpolation weight of x within segment [a, b].
double segmentRatio(double a, double b, double x) noexcept {
  const double span = b - a;
  return span > 0.0 ? (x - a) / span : 0.0;
}

}  // namespace

double linear(const Axis& axis, std::span<const double> values, double x,
              EdgePolicy policy) noexcept {
  assert(axis.size() == values.size());
  assert(!axis.empty());
  if (axis.size() == 1) return values.front();
  if (policy == EdgePolicy::kClamp) x = clampToAxis(axis, x);
  const std::size_t i = bracket(axis, x);
  const double t = segmentRatio(axis[i], axis[i + 1], x);
  return values[i] * (1.0 - t) + values[i + 1] * t;
}

double bilinear(const Axis& slewAxis, const Axis& loadAxis, const Grid2d& grid,
                double slew, double load, EdgePolicy policy) noexcept {
  assert(grid.rows() == slewAxis.size());
  assert(grid.cols() == loadAxis.size());
  assert(!slewAxis.empty() && !loadAxis.empty());

  if (policy == EdgePolicy::kClamp) {
    slew = clampToAxis(slewAxis, slew);
    load = clampToAxis(loadAxis, load);
  }

  // Degenerate axes fall back to 1D (or 0D) interpolation.
  if (slewAxis.size() == 1 && loadAxis.size() == 1) return grid.at(0, 0);

  std::size_t j = 0;
  double tl = 0.0;  // weight along the load axis
  if (loadAxis.size() > 1) {
    j = bracket(loadAxis, load);
    tl = segmentRatio(loadAxis[j], loadAxis[j + 1], load);
  }

  std::size_t i = 0;
  double ts = 0.0;  // weight along the slew axis
  if (slewAxis.size() > 1) {
    i = bracket(slewAxis, slew);
    ts = segmentRatio(slewAxis[i], slewAxis[i + 1], slew);
  }

  auto rowInterp = [&](std::size_t row) {
    if (loadAxis.size() == 1) return grid.at(row, 0);
    // Eq. (2)/(3): interpolate along the load axis within one slew row.
    return grid.at(row, j) * (1.0 - tl) + grid.at(row, j + 1) * tl;
  };

  if (slewAxis.size() == 1) return rowInterp(0);
  // Eq. (4): interpolate the two partial results along the slew axis.
  const double p1 = rowInterp(i);
  const double p2 = rowInterp(i + 1);
  return p1 * (1.0 - ts) + p2 * ts;
}

InterpCoords interpCoords(const Axis& slewAxis, const Axis& loadAxis,
                          double slew, double load,
                          EdgePolicy policy) noexcept {
  assert(!slewAxis.empty() && !loadAxis.empty());
  if (policy == EdgePolicy::kClamp) {
    slew = clampToAxis(slewAxis, slew);
    load = clampToAxis(loadAxis, load);
  }
  InterpCoords coords;
  coords.singleRow = slewAxis.size() == 1;
  coords.singleCol = loadAxis.size() == 1;
  if (!coords.singleCol) {
    coords.col = bracket(loadAxis, load);
    coords.colWeight =
        segmentRatio(loadAxis[coords.col], loadAxis[coords.col + 1], load);
  }
  if (!coords.singleRow) {
    coords.row = bracket(slewAxis, slew);
    coords.rowWeight =
        segmentRatio(slewAxis[coords.row], slewAxis[coords.row + 1], slew);
  }
  coords.rowWeightC = 1.0 - coords.rowWeight;
  coords.colWeightC = 1.0 - coords.colWeight;
  return coords;
}

}  // namespace sct::numeric
