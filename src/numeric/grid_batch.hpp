#pragma once
// Structure-of-arrays batch of identically shaped grids: the values of all
// Monte-Carlo instances of one LUT entry are stored contiguously, so a
// single InterpCoords axis search fans out across the whole batch with one
// branch-free inner loop per entry (instead of N strided per-instance
// lookups). Layout: values[(r * cols + c) * n + k] — entry-major, instance
// index k innermost.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "numeric/grid2d.hpp"

namespace sct::numeric {

class GridBatch {
 public:
  GridBatch() = default;
  GridBatch(std::size_t rows, std::size_t cols, std::size_t instances,
            double fill = 0.0)
      : rows_(rows),
        cols_(cols),
        n_(instances),
        values_(rows * cols * instances, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t instances() const noexcept { return n_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// All instance values of one grid entry, contiguous.
  [[nodiscard]] std::span<double> cell(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return {values_.data() + (r * cols_ + c) * n_, n_};
  }
  [[nodiscard]] std::span<const double> cell(std::size_t r,
                                             std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return {values_.data() + (r * cols_ + c) * n_, n_};
  }

  [[nodiscard]] double at(std::size_t r, std::size_t c,
                          std::size_t k) const noexcept {
    assert(k < n_);
    return cell(r, c)[k];
  }
  [[nodiscard]] double& at(std::size_t r, std::size_t c,
                           std::size_t k) noexcept {
    assert(k < n_);
    return cell(r, c)[k];
  }

  [[nodiscard]] std::span<double> flat() noexcept { return values_; }
  [[nodiscard]] std::span<const double> flat() const noexcept {
    return values_;
  }

  /// Transposes instance-major grids (one Grid2d per instance, all of the
  /// batch shape) into the SoA layout.
  void gather(std::span<const Grid2d* const> grids) noexcept {
    assert(grids.size() == n_);
    for (std::size_t k = 0; k < n_; ++k) {
      assert(grids[k] != nullptr && grids[k]->rows() == rows_ &&
             grids[k]->cols() == cols_);
      const std::span<const double> src = grids[k]->flat();
      for (std::size_t i = 0; i < src.size(); ++i) {
        values_[i * n_ + k] = src[i];
      }
    }
  }

  /// Copies instance k back out into a row-major flat grid (the inverse of
  /// gather() for one instance).
  void scatterTo(std::size_t k, std::span<double> flat) const noexcept {
    assert(k < n_ && flat.size() == rows_ * cols_);
    for (std::size_t i = 0; i < flat.size(); ++i) {
      flat[i] = values_[i * n_ + k];
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t n_ = 0;
  std::vector<double> values_;
};

}  // namespace sct::numeric
