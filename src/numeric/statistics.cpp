#include "numeric/statistics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace sct::numeric {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * (nb / total);
  m2_ += other.m2_ + delta * delta * (na * nb / total);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

NormalSummary summarize(std::span<const double> samples) noexcept {
  RunningStats stats;
  for (double s : samples) stats.add(s);
  return stats.summary();
}

double normalPdf(double x) noexcept {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normalCdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

NormalSummary clarkMax(const NormalSummary& x,
                       const NormalSummary& y) noexcept {
  const double varX = x.sigma * x.sigma;
  const double varY = y.sigma * y.sigma;
  const double theta = std::sqrt(varX + varY);
  if (theta < 1e-15) {
    // Both deterministic: plain max.
    return {std::max(x.mean, y.mean), 0.0};
  }
  const double alpha = (x.mean - y.mean) / theta;
  const double cdf = normalCdf(alpha);
  const double pdf = normalPdf(alpha);
  const double mean = x.mean * cdf + y.mean * (1.0 - cdf) + theta * pdf;
  const double second = (x.mean * x.mean + varX) * cdf +
                        (y.mean * y.mean + varY) * (1.0 - cdf) +
                        (x.mean + y.mean) * theta * pdf;
  const double variance = second - mean * mean;
  return {mean, variance > 0.0 ? std::sqrt(variance) : 0.0};
}

double quantile(std::span<const double> samples, double q) {
  assert(!samples.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace sct::numeric
