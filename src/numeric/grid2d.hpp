#pragma once
// Dense 2D grid of doubles, the storage behind every look-up table in the
// library model. Row-major; by library convention rows follow the input-slew
// axis (index_1) and columns the output-load axis (index_2).

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace sct::numeric {

class Grid2d {
 public:
  Grid2d() = default;
  Grid2d(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return values_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return values_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> flat() noexcept { return values_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return values_; }

  /// Entry-wise maximum with another grid of identical shape.
  void maxWith(const Grid2d& other) noexcept {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < values_.size(); ++i) {
      if (other.values_[i] > values_[i]) values_[i] = other.values_[i];
    }
  }

  [[nodiscard]] double maxValue() const noexcept {
    double m = values_.empty() ? 0.0 : values_.front();
    for (double v : values_) {
      if (v > m) m = v;
    }
    return m;
  }

  [[nodiscard]] double minValue() const noexcept {
    double m = values_.empty() ? 0.0 : values_.front();
    for (double v : values_) {
      if (v < m) m = v;
    }
    return m;
  }

  friend bool operator==(const Grid2d&, const Grid2d&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

/// Monotonically increasing axis of index values (slew or load breakpoints).
using Axis = std::vector<double>;

/// True when the axis is strictly increasing and non-empty.
[[nodiscard]] bool isStrictlyIncreasing(const Axis& axis) noexcept;

/// Index i such that axis[i] <= x < axis[i+1], clamped to [0, n-2] so the
/// surrounding segment always exists (callers extrapolate or clamp outside
/// the axis range). Requires axis.size() >= 2. Linear scan: library axes
/// have a handful of breakpoints, where the scan beats a binary search.
[[nodiscard]] inline std::size_t bracket(const Axis& axis, double x) noexcept {
  assert(axis.size() >= 2);
  const std::size_t last = axis.size() - 1;
  std::size_t i = 1;
  while (i < last && axis[i] <= x) ++i;
  return i - 1;
}

}  // namespace sct::numeric
