#include "numeric/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace sct::numeric {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniformInt(std::uint64_t n) noexcept {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % n;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; uniform() can return 0, so flip to (0, 1].
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  // Mix the tag with fresh output so sibling forks are decorrelated and the
  // parent stream advances (forking twice with the same tag gives distinct
  // children).
  std::uint64_t mixed = next() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  return Rng(splitmix64(mixed));
}

Rng Rng::child(std::uint64_t tag) const noexcept {
  // Collapse the state words and the tag through splitmix64; no state word
  // is modified, so siblings child(a), child(b) are pure functions of
  // (state, a) and (state, b).
  std::uint64_t mixed = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 27) ^
                        rotl(state_[3], 41);
  mixed ^= tag * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL;
  return Rng(splitmix64(mixed));
}

std::uint64_t Rng::hashTag(std::string_view text) noexcept {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sct::numeric
