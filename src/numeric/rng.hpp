#pragma once
// Deterministic random number generation for characterization and Monte
// Carlo experiments. Every consumer receives an explicitly seeded stream so
// all experiments in the repository are exactly reproducible.

#include <cstdint>
#include <string_view>

namespace sct::numeric {

/// xoshiro256** generator seeded through splitmix64. Deterministic across
/// platforms; not cryptographic. Streams can be forked with independent,
/// well-separated state using fork().
class Rng {
 public:
  /// Seeds the four 64-bit words of state from a single seed value.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniformInt(std::uint64_t n) noexcept;

  /// Standard normal deviate (Box-Muller with caching).
  double normal() noexcept;

  /// Normal deviate with given mean and standard deviation.
  double normal(double mean, double sigma) noexcept;

  /// Derives an independent child stream. The tag decorrelates children
  /// forked from the same parent state. Advances the parent, so the child
  /// depends on how often the parent was used before the fork.
  Rng fork(std::uint64_t tag) noexcept;

  /// Counter-based derivation: a child stream that depends only on the
  /// parent's *current* state and the tag, without advancing the parent.
  /// child(t) on a freshly-seeded parent is therefore a pure function of
  /// (seed, t) — the property the parallel Monte-Carlo loops rely on to make
  /// any execution order (including concurrent) draw identical values.
  /// Distinct tags give decorrelated streams; calling child() twice with the
  /// same tag returns the same stream.
  [[nodiscard]] Rng child(std::uint64_t tag) const noexcept;

  /// Stable 64-bit hash of a string, usable as a fork tag.
  static std::uint64_t hashTag(std::string_view text) noexcept;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sct::numeric
