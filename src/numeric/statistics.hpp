#pragma once
// Sample statistics used throughout the statistical-library flow. The paper
// (section III) argues that the *standard deviation* of the cell-delay
// distribution — not the coefficient of variation — is the right local
// variation metric; both are exposed here so the metric ablation can compare
// them.

#include <cstddef>
#include <span>

namespace sct::numeric {

/// Summary of a (assumed normal) sample distribution.
struct NormalSummary {
  double mean = 0.0;
  double sigma = 0.0;  ///< sample standard deviation (n-1 denominator)

  /// Coefficient of variation sigma/mean (paper eq. (1)); 0 when mean == 0.
  [[nodiscard]] double variability() const noexcept {
    return mean != 0.0 ? sigma / mean : 0.0;
  }
};

/// Numerically stable running mean/variance (Welford). Two accumulators
/// over disjoint sample halves can be combined with merge() (Chan et al.'s
/// parallel update), which is what the chunked parallel reductions use.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Folds another accumulator in, as if its samples had been add()ed here.
  /// Mean and variance match the single-stream result to floating-point
  /// rounding; count/min/max match exactly.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance with n-1 denominator; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  [[nodiscard]] NormalSummary summary() const noexcept {
    return {mean(), stddev()};
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: summary of a whole sample in one call.
[[nodiscard]] NormalSummary summarize(std::span<const double> samples) noexcept;

/// Sample quantile with linear interpolation between order statistics.
/// q must lie in [0, 1]; the input need not be sorted (a copy is sorted).
[[nodiscard]] double quantile(std::span<const double> samples, double q);

/// Standard normal density phi(x).
[[nodiscard]] double normalPdf(double x) noexcept;
/// Standard normal CDF Phi(x).
[[nodiscard]] double normalCdf(double x) noexcept;

/// Clark's moment-matching approximation of max(X, Y) for independent
/// Gaussians X, Y: returns a Gaussian with the exact first two moments of
/// the maximum. The workhorse of block-based statistical STA.
[[nodiscard]] NormalSummary clarkMax(const NormalSummary& x,
                                     const NormalSummary& y) noexcept;

}  // namespace sct::numeric
