#pragma once
// Post-silicon clock tuning (Li & Schlichtmann / EffiTest direction named in
// ROADMAP): every capture register gets a discrete tunable delay element in
// its clock branch (clocktree::TuningElementSpec). After manufacturing, each
// die programs its elements from measured slack; pre-silicon we compute, per
// register, the *distribution* of assignments across Monte-Carlo die
// instances — driven by the same path-MC machinery as Figs. 15/16, batched
// over instances via GridBatch-style structure-of-arrays delay matrices.
//
// Model per die (trial) t:
//   slack[p][t]  = required_p - mcDelay_p(t)          (path p, die t)
//   need[r][t]   = max over paths captured at r of max(0, -slack)
//   budget[r][t] = min over paths *launched* from r of slack (clamped >= 0):
//                  delaying r's clock also delays its launch edges, so a
//                  register may only borrow slack its downstream paths have
//   a[r][t]      = min(ceil-to-grid(need), floor-to-grid(min(budget,
//                  rangeMax)))   (discrete element; ceiling covers the
//                  need, the floored cap never over-borrows)
//   slack'[p][t] = slack + a[capture(p)] - a[launch(p)]
// The budget clamp makes the per-trial pass set monotone: tuning never turns
// a passing die into a failing one, so designYieldAfter >= designYieldBefore
// by construction.
//
// Deterministic and thread-count independent: trial streams are
// counter-based children of (seed, t) exactly like PathMonteCarlo::simulate.

#include <cstdint>
#include <string>
#include <vector>

#include "charlib/characterizer.hpp"
#include "clocktree/clock_tree.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace sct::postsi {

struct ClockTuningConfig {
  clocktree::TuningElementSpec element{};
  std::size_t trials = 200;  ///< Monte-Carlo die instances (paper: N = 200)
  std::uint64_t mcSeed = 2014;
  bool includeGlobal = true;  ///< shared per-die global factor
  charlib::ProcessCorner corner = charlib::ProcessCorner::typical();
};

/// Statistical tuning range of one register's delay element.
struct RegisterTuning {
  std::string instance;       ///< register (capture flip-flop) name
  double slackMean = 0.0;     ///< worst capture-path MC slack mean [ns]
  double slackSigma = 0.0;
  double assignMean = 0.0;    ///< effective assignment distribution [ns]
  double assignSigma = 0.0;
  double assignMax = 0.0;     ///< largest assignment any die needed
  double chosen = 0.0;        ///< deterministic setting: snap(assignMean)
  double yieldBefore = 0.0;   ///< fraction of dies meeting this register
  double yieldAfter = 0.0;
};

struct ClockTuningResult {
  std::vector<RegisterTuning> registers;
  std::size_t trials = 0;
  std::size_t elements = 0;      ///< tunable elements attached
  double tuningArea = 0.0;       ///< elements * areaPerElement [um^2]
  double designYieldBefore = 0.0;  ///< per-die AND across every path
  double designYieldAfter = 0.0;
};

/// Computes per-register statistical tuning assignments over the endpoint
/// worst paths of an analyzed design. `paths` must come from the analyzer of
/// `design` (TimingAnalyzer::endpointWorstPaths or TuningFlow::tracePaths).
/// With element.enabled() == false the result still carries the MC design
/// yield (designYieldBefore == designYieldAfter) — the scenario baseline.
[[nodiscard]] ClockTuningResult computeClockTuning(
    const charlib::Characterizer& characterizer,
    const netlist::Design& design, const std::vector<sta::TimingPath>& paths,
    const ClockTuningConfig& config);

}  // namespace sct::postsi
