#pragma once
// ScenarioRunner: the post-silicon experiment matrix (ISSUE: LUT-window
// tuning alone, + clock tuning, + buffer insertion) evaluated at the paper's
// clock periods, each (scenario, period) cell a cache-keyed flow stage —
// cold runs compute and publish through ArtifactStore/MemoryArtifactCache,
// warm runs (and the daemon) decode the same bytes, so the deterministic
// sigma/area/power/yield trade-off report is byte-identical across CLI,
// daemon, and cache temperature by construction.

#include <cstdint>
#include <string>
#include <vector>

#include "clocktree/clock_tree.hpp"
#include "core/flow.hpp"
#include "core/flow_job.hpp"

namespace sct::postsi {

/// Scenario identifiers, cumulative in paper order:
///   "tuning"  — LUT-window library tuning alone (the flow baseline)
///   "clock"   — + post-silicon clock tuning (tunable delay elements)
///   "buffers" — + sampling-based buffer insertion, then clock tuning
inline constexpr const char* kScenarioTuning = "tuning";
inline constexpr const char* kScenarioClock = "clock";
inline constexpr const char* kScenarioBuffers = "buffers";

struct ScenarioJob {
  core::FlowJob flow;  ///< profile/method/value/mc/lint (period ignored)
  std::vector<double> periods;  ///< explicit clock periods [ns]
  std::string scenarios = "tuning,clock,buffers";  ///< comma list, run order
  clocktree::TuningElementSpec element{0.0, 0.3, 0.05, 2.0};
  std::uint64_t mcTrials = 0;  ///< die instances; 0 = profile default
  std::uint64_t mcSeed = 2014;
};

/// The paper's four clock-period set as ratios of a base period
/// (2.41 / 2.5 / 4.0 / 10.0 ns in section VII, normalized to the 2.41 ns
/// minimum). Shared by the CLI and tests so both derive identical jobs.
[[nodiscard]] std::vector<double> paperPeriods(double base);

/// One (scenario, period) cell of the matrix.
struct ScenarioCell {
  std::string scenario;
  double period = 0.0;
  bool success = false;  ///< synthesis success at this period
  bool met = false;      ///< deterministic STA timing met
  double wns = 0.0;
  double area = 0.0;  ///< mapped area + tuning-element area [um^2]
  double designSigma = 0.0;
  double worstPathSigma = 0.0;
  double powerMean = 0.0;  ///< dynamic power totals (src/power) [uW]
  double powerSigma = 0.0;
  double yield = 0.0;  ///< MC design yield (fraction of passing dies)
  std::uint64_t buffers = 0;   ///< sampling-pass insertions accepted
  std::uint64_t elements = 0;  ///< tunable clock elements attached
  double tuningArea = 0.0;
  /// Baseline cell only: the full "flow-report v1" text of the underlying
  /// flow job — byte-identical to `sctune flow --report` at this period.
  std::string flowReport;
};

struct ScenarioRunResult {
  bool success = false;  ///< every cell synthesized successfully
  std::string summary;   ///< one-line human summary
  std::string report;    ///< deterministic "scenario-report v1" text (%.17g)
  std::string json;      ///< same matrix as a deterministic JSON array
  std::vector<ScenarioCell> cells;  ///< scenario-major, period-minor order
};

/// Runs the matrix on an already-constructed flow. Each cell goes through
/// core::cachedStage against the flow's cache tiers (stage names
/// "scenario.stage.<name>", so spans and per-stage metrics come for free);
/// report/json bytes depend only on the job — never on cache state, thread
/// count, or transport. Throws std::runtime_error on unknown scenario names
/// or an empty period list.
[[nodiscard]] ScenarioRunResult runScenarioJob(core::TuningFlow& flow,
                                               const ScenarioJob& job);

}  // namespace sct::postsi
