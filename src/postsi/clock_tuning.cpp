#include "postsi/clock_tuning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numeric/rng.hpp"
#include "numeric/statistics.hpp"
#include "parallel/parallel.hpp"
#include "variation/monte_carlo.hpp"

namespace sct::postsi {
namespace {

constexpr double kSlackEps = 1e-12;

/// Smallest grid setting that covers `want` (ceiling on the step grid,
/// capped at the top usable setting). The element must delay the capture
/// clock by *at least* the measured need — flooring would leave the die
/// failing by less than one step.
double snapUp(const clocktree::TuningElementSpec& spec, double want) {
  const double top = spec.snap(spec.rangeMax);
  if (want <= spec.rangeMin) return spec.rangeMin;
  if (want >= top) return top;
  const double floored = spec.snap(want);
  if (want - floored <= kSlackEps) return floored;
  return std::min(floored + spec.step, top);
}

/// Launching register of a path: steps.front() when it is a sequential
/// element (clk->Q launch); kNoInst for paths launched at primary inputs.
netlist::InstIndex launcherOf(const netlist::Design& design,
                              const sta::TimingPath& path) {
  if (path.steps.empty()) return netlist::kNoInst;
  const netlist::InstIndex head = path.steps.front().instance;
  if (head == netlist::kNoInst) return netlist::kNoInst;
  if (!netlist::isSequential(design.instance(head).op)) return netlist::kNoInst;
  return head;
}

}  // namespace

ClockTuningResult computeClockTuning(
    const charlib::Characterizer& characterizer,
    const netlist::Design& design, const std::vector<sta::TimingPath>& paths,
    const ClockTuningConfig& config) {
  ClockTuningResult out;
  out.trials = config.trials;
  const std::size_t numPaths = paths.size();
  const std::size_t trials = config.trials;
  if (numPaths == 0 || trials == 0) {
    out.designYieldBefore = 1.0;
    out.designYieldAfter = 1.0;
    return out;
  }

  // --- Register table: capture instances in first-appearance order. ---
  constexpr std::size_t kNoReg = std::numeric_limits<std::size_t>::max();
  std::vector<netlist::InstIndex> registers;
  std::vector<std::size_t> captureReg(numPaths, kNoReg);
  std::vector<std::size_t> launchReg(numPaths, kNoReg);
  auto regIndex = [&registers](netlist::InstIndex inst) {
    for (std::size_t r = 0; r < registers.size(); ++r) {
      if (registers[r] == inst) return r;
    }
    registers.push_back(inst);
    return registers.size() - 1;
  };
  for (std::size_t p = 0; p < numPaths; ++p) {
    const netlist::InstIndex cap = paths[p].endpoint.instance;
    if (cap != netlist::kNoInst) captureReg[p] = regIndex(cap);
    const netlist::InstIndex lau = launcherOf(design, paths[p]);
    if (lau != netlist::kNoInst) launchReg[p] = regIndex(lau);
  }
  const std::size_t numRegs = registers.size();

  // --- Batched MC: SoA slack matrix, slack[p * trials + t]. ---
  // Trial t is one die: a shared global factor plus per-(die, path) local
  // mismatch streams, all counter-derived from (seed, t) so the matrix is
  // bit-identical for any thread count (same trial structure as
  // PathMonteCarlo::simulate, with per-path children of the local stream).
  const variation::PathMonteCarlo mc(characterizer);
  const charlib::DelayModel& model = characterizer.model();
  std::vector<std::vector<variation::ResolvedPathStep>> resolved(numPaths);
  for (std::size_t p = 0; p < numPaths; ++p) {
    resolved[p] = mc.resolvePath(paths[p]);
  }
  std::vector<double> slack(numPaths * trials, 0.0);
  const numeric::Rng master(config.mcSeed);
  const std::uint64_t globalTag = numeric::Rng::hashTag("global");
  const std::uint64_t localTag = numeric::Rng::hashTag("local");
  parallel::parallelFor(trials, [&](std::size_t t) {
    const numeric::Rng trial = master.child(t);
    numeric::Rng globalRng = trial.child(globalTag);
    const numeric::Rng localBase = trial.child(localTag);
    const double globalDraw = model.drawGlobalFactor(globalRng);
    const double globalFactor = config.includeGlobal ? globalDraw : 1.0;
    for (std::size_t p = 0; p < numPaths; ++p) {
      numeric::Rng localRng = localBase.child(p);
      const double delay =
          mc.evaluateResolved(resolved[p], config.corner, globalFactor,
                              &localRng);
      slack[p * trials + t] = paths[p].endpoint.required - delay;
    }
  });

  // --- Per-register path index lists (capture and launch sides). ---
  std::vector<std::vector<std::size_t>> capturePaths(numRegs);
  std::vector<std::vector<std::size_t>> launchPaths(numRegs);
  for (std::size_t p = 0; p < numPaths; ++p) {
    if (captureReg[p] != kNoReg) capturePaths[captureReg[p]].push_back(p);
    if (launchReg[p] != kNoReg) launchPaths[launchReg[p]].push_back(p);
  }

  // --- Per-die assignments, a[r * trials + t]. ---
  const clocktree::TuningElementSpec& spec = config.element;
  const bool tuning = spec.enabled() && spec.valid();
  std::vector<double> assign(numRegs * trials, 0.0);
  if (tuning) {
    parallel::parallelFor(trials, [&](std::size_t t) {
      for (std::size_t r = 0; r < numRegs; ++r) {
        double need = 0.0;
        for (const std::size_t p : capturePaths[r]) {
          need = std::max(need, -slack[p * trials + t]);
        }
        double budget = std::numeric_limits<double>::infinity();
        for (const std::size_t p : launchPaths[r]) {
          budget = std::min(budget, slack[p * trials + t]);
        }
        budget = std::max(budget, 0.0);
        // Cover the need from below-capped grid settings: ceil(need) fixes
        // the die, floor(budget) keeps every launched path passing.
        const double desired = need > 0.0 ? snapUp(spec, need) : 0.0;
        const double cap = spec.snap(std::min(budget, spec.rangeMax));
        assign[r * trials + t] = std::min(desired, cap);
      }
    });
  }

  // --- Yields and per-register statistics. ---
  auto tunedSlack = [&](std::size_t p, std::size_t t) {
    double s = slack[p * trials + t];
    if (captureReg[p] != kNoReg) s += assign[captureReg[p] * trials + t];
    if (launchReg[p] != kNoReg) s -= assign[launchReg[p] * trials + t];
    return s;
  };
  std::size_t passBefore = 0;
  std::size_t passAfter = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    bool okBefore = true;
    bool okAfter = true;
    for (std::size_t p = 0; p < numPaths; ++p) {
      if (slack[p * trials + t] < -kSlackEps) okBefore = false;
      if (tunedSlack(p, t) < -kSlackEps) okAfter = false;
    }
    passBefore += okBefore ? 1u : 0u;
    passAfter += okAfter ? 1u : 0u;
  }
  out.designYieldBefore =
      static_cast<double>(passBefore) / static_cast<double>(trials);
  out.designYieldAfter =
      static_cast<double>(passAfter) / static_cast<double>(trials);

  out.registers.reserve(numRegs);
  for (std::size_t r = 0; r < numRegs; ++r) {
    RegisterTuning reg;
    reg.instance = design.instance(registers[r]).name;
    numeric::RunningStats slackStats;
    numeric::RunningStats assignStats;
    std::size_t okBefore = 0;
    std::size_t okAfter = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      double worst = std::numeric_limits<double>::infinity();
      double worstTuned = std::numeric_limits<double>::infinity();
      for (const std::size_t p : capturePaths[r]) {
        worst = std::min(worst, slack[p * trials + t]);
        worstTuned = std::min(worstTuned, tunedSlack(p, t));
      }
      if (capturePaths[r].empty()) worst = worstTuned = 0.0;
      slackStats.add(worst);
      assignStats.add(assign[r * trials + t]);
      okBefore += worst >= -kSlackEps ? 1u : 0u;
      okAfter += worstTuned >= -kSlackEps ? 1u : 0u;
    }
    reg.slackMean = slackStats.mean();
    reg.slackSigma = slackStats.stddev();
    reg.assignMean = assignStats.mean();
    reg.assignSigma = assignStats.stddev();
    reg.assignMax = assignStats.max();
    reg.chosen = tuning ? spec.snap(assignStats.mean()) : 0.0;
    reg.yieldBefore =
        static_cast<double>(okBefore) / static_cast<double>(trials);
    reg.yieldAfter = static_cast<double>(okAfter) / static_cast<double>(trials);
    out.registers.push_back(std::move(reg));
  }

  out.elements = tuning ? numRegs : 0;
  out.tuningArea =
      static_cast<double>(out.elements) * spec.areaPerElement;
  return out;
}

}  // namespace sct::postsi
