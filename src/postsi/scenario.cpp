#include "postsi/scenario.hpp"

#include <cstdio>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "artifact/hash.hpp"
#include "core/stage_cache.hpp"
#include "postsi/clock_tuning.hpp"
#include "power/power_model.hpp"
#include "power/power_stats.hpp"
#include "synth/buffer_sampling.hpp"
#include "tuning/methods.hpp"
#include "variation/path_stats.hpp"

namespace sct::postsi {
namespace {

/// Full-precision round-trippable double rendering; the scenario report is
/// compared byte-for-byte between CLI, daemon, and cache temperatures.
std::string fmt17(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

constexpr std::uint32_t kScenarioSchema = 1;

std::vector<std::string> parseScenarios(const std::string& list) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream stream(list);
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    if (token != kScenarioTuning && token != kScenarioClock &&
        token != kScenarioBuffers) {
      throw std::runtime_error("unknown scenario '" + token +
                               "' (tuning/clock/buffers)");
    }
    out.push_back(token);
  }
  if (out.empty()) throw std::runtime_error("empty scenario list");
  return out;
}

/// cachedStage requires a literal stage name (span + metric prefix).
const char* stageNameFor(const std::string& scenario) {
  if (scenario == kScenarioClock) return "scenario.stage.clock";
  if (scenario == kScenarioBuffers) return "scenario.stage.buffers";
  return "scenario.stage.tuning";
}

double mappedArea(const netlist::Design& design) {
  double area = 0.0;
  for (netlist::InstIndex i = 0; i < design.instanceCount(); ++i) {
    const netlist::Instance& inst = design.instance(i);
    if (inst.alive && inst.cell != nullptr) area += inst.cell->area();
  }
  return area;
}

artifact::Digest cellKey(const ScenarioJob& job, const std::string& scenario,
                         double period, std::size_t trials) {
  artifact::Hasher hasher;
  hasher.str("sct-scenario");
  hasher.u32(kScenarioSchema);
  hasher.str(job.flow.profile);
  hasher.str(job.flow.method);
  hasher.f64(job.flow.value);
  hasher.u64(job.flow.mcCount);
  hasher.u64(job.flow.mcSeed);
  hasher.str(job.flow.lintMode);
  hasher.str(scenario);
  hasher.f64(period);
  hasher.f64(job.element.rangeMin);
  hasher.f64(job.element.rangeMax);
  hasher.f64(job.element.step);
  hasher.f64(job.element.areaPerElement);
  hasher.u64(trials);
  hasher.u64(job.mcSeed);
  return hasher.digest();
}

void encodeCell(artifact::SctbWriter& writer, const ScenarioCell& cell) {
  writer.beginSection("scenario-cell");
  writer.u32(kScenarioSchema);
  writer.str(cell.scenario);
  writer.f64(cell.period);
  writer.boolean(cell.success);
  writer.boolean(cell.met);
  writer.f64(cell.wns);
  writer.f64(cell.area);
  writer.f64(cell.designSigma);
  writer.f64(cell.worstPathSigma);
  writer.f64(cell.powerMean);
  writer.f64(cell.powerSigma);
  writer.f64(cell.yield);
  writer.u64(cell.buffers);
  writer.u64(cell.elements);
  writer.f64(cell.tuningArea);
  writer.str(cell.flowReport);
}

ScenarioCell decodeCell(const artifact::SctbReader& reader) {
  artifact::SctbReader::Cursor cursor = reader.section("scenario-cell");
  if (cursor.u32() != kScenarioSchema) {
    throw artifact::FormatError("scenario-cell schema mismatch");
  }
  ScenarioCell cell;
  cell.scenario = cursor.str();
  cell.period = cursor.f64();
  cell.success = cursor.boolean();
  cell.met = cursor.boolean();
  cell.wns = cursor.f64();
  cell.area = cursor.f64();
  cell.designSigma = cursor.f64();
  cell.worstPathSigma = cursor.f64();
  cell.powerMean = cursor.f64();
  cell.powerSigma = cursor.f64();
  cell.yield = cursor.f64();
  cell.buffers = cursor.u64();
  cell.elements = cursor.u64();
  cell.tuningArea = cursor.f64();
  cell.flowReport = cursor.str();
  return cell;
}

ScenarioCell computeCell(core::TuningFlow& flow, const ScenarioJob& job,
                         const std::string& scenario, double period,
                         std::size_t trials) {
  core::FlowJob cellJob = job.flow;
  cellJob.period = period;
  std::optional<tuning::TuningConfig> tuningConfig;
  if (!cellJob.method.empty()) {
    tuningConfig = tuning::TuningConfig::forMethod(
        core::tuningMethodByName(cellJob.method), cellJob.value);
  }
  const core::DesignMeasurement m =
      tuningConfig ? flow.synthesizeTuned(period, *tuningConfig)
                   : flow.synthesizeBaseline(period);

  ScenarioCell cell;
  cell.scenario = scenario;
  cell.period = period;
  cell.success = m.success();
  cell.met = m.synthesis.timingMet;
  cell.wns = m.synthesis.worstSlack;
  cell.area = m.area();
  cell.designSigma = m.sigma();
  cell.powerMean = m.power.meanPower;
  cell.powerSigma = m.power.sigmaPower;
  for (const core::PathRecord& p : m.paths) {
    cell.worstPathSigma = std::max(cell.worstPathSigma, p.sigma);
  }

  ClockTuningConfig mc;
  mc.trials = trials;
  mc.mcSeed = job.mcSeed;

  if (scenario == kScenarioTuning) {
    // Baseline: MC yield with no post-silicon knobs, plus the underlying
    // flow report (byte-identical to `sctune flow --report` by sharing
    // runFlowJob; the synthesis stage behind it is a cache hit).
    const std::vector<sta::TimingPath> paths =
        flow.tracePaths(m.synthesis, period);
    mc.element = clocktree::TuningElementSpec{};  // disabled
    const ClockTuningResult r = computeClockTuning(
        flow.characterizer(), m.synthesis.design, paths, mc);
    cell.yield = r.designYieldBefore;
    cell.flowReport = core::runFlowJob(flow, cellJob).report;
    return cell;
  }

  if (scenario == kScenarioClock) {
    const std::vector<sta::TimingPath> paths =
        flow.tracePaths(m.synthesis, period);
    mc.element = job.element;
    const ClockTuningResult r = computeClockTuning(
        flow.characterizer(), m.synthesis.design, paths, mc);
    cell.yield = r.designYieldAfter;
    cell.elements = r.elements;
    cell.tuningArea = r.tuningArea;
    cell.area += r.tuningArea;
    return cell;
  }

  // "buffers": sampling-based insertion on top of the synthesized design,
  // then clock tuning over the buffered paths (cumulative scenario).
  std::optional<tuning::LibraryConstraints> constraints;
  if (tuningConfig) constraints = flow.tune(*tuningConfig);
  sta::ClockSpec clock = flow.config().clock;
  clock.period = period;
  synth::BufferSamplingOptions options;
  options.trials = trials;
  options.seed = job.mcSeed;
  const synth::BufferSamplingResult sampled = synth::sampleBufferInsertion(
      m.synthesis.design, flow.nominalLibrary(), flow.statLibrary(),
      flow.characterizer(), clock, constraints ? &*constraints : nullptr,
      options);
  cell.buffers = sampled.inserted;

  sta::TimingAnalyzer analyzer(sampled.design, flow.nominalLibrary(), clock);
  if (!analyzer.analyze()) return cell;  // unreachable for synthesized input
  const std::vector<sta::TimingPath> paths = analyzer.endpointWorstPaths();
  cell.met = analyzer.met();
  cell.wns = analyzer.worstSlack();
  const variation::PathStatistics stats(flow.statLibrary(),
                                        flow.config().rho);
  const variation::DesignStats designStats = stats.designStats(paths);
  cell.designSigma = designStats.sigma;
  cell.worstPathSigma = sampled.worstPathSigmaAfter;
  const power::PowerModel powerModel(flow.characterizer().model());
  const power::DesignPower power = power::analyzeDesignPower(
      sampled.design, analyzer, flow.characterizer(), powerModel,
      flow.config().powerActivity, flow.config().powerSamples,
      flow.config().powerSeed);
  cell.powerMean = power.meanPower;
  cell.powerSigma = power.sigmaPower;

  mc.element = job.element;
  const ClockTuningResult r = computeClockTuning(
      flow.characterizer(), sampled.design, paths, mc);
  cell.yield = r.designYieldAfter;
  cell.elements = r.elements;
  cell.tuningArea = r.tuningArea;
  cell.area = mappedArea(sampled.design) + r.tuningArea;
  return cell;
}

}  // namespace

std::vector<double> paperPeriods(double base) {
  return {base, base * (2.5 / 2.41), base * (4.0 / 2.41),
          base * (10.0 / 2.41)};
}

ScenarioRunResult runScenarioJob(core::TuningFlow& flow,
                                 const ScenarioJob& job) {
  if (job.periods.empty()) {
    throw std::runtime_error("scenario job needs at least one clock period");
  }
  const std::vector<std::string> scenarios = parseScenarios(job.scenarios);
  const std::size_t trials =
      job.mcTrials != 0
          ? job.mcTrials
          : (job.flow.profile == "small" ? std::size_t{64} : std::size_t{200});

  ScenarioRunResult result;
  result.success = true;
  for (const std::string& scenario : scenarios) {
    for (const double period : job.periods) {
      ScenarioCell cell = core::cachedStage<ScenarioCell>(
          flow.cache(), flow.memCache(), stageNameFor(scenario),
          cellKey(job, scenario, period, trials),
          [&] { return computeCell(flow, job, scenario, period, trials); },
          encodeCell, decodeCell);
      result.success = result.success && cell.success;
      result.cells.push_back(std::move(cell));
    }
  }

  // --- deterministic text report -----------------------------------------
  std::ostringstream report;
  report << "scenario-report v1\n";
  report << "matrix scenarios " << scenarios.size() << " periods "
         << job.periods.size() << " trials " << trials << " seed "
         << job.mcSeed << "\n";
  for (const ScenarioCell& cell : result.cells) {
    report << "scenario " << cell.scenario << " period " << fmt17(cell.period)
           << " met " << cell.met << " wns " << fmt17(cell.wns) << " area "
           << fmt17(cell.area) << " sigma " << fmt17(cell.designSigma)
           << " worst-path-sigma " << fmt17(cell.worstPathSigma)
           << " power-mean " << fmt17(cell.powerMean) << " power-sigma "
           << fmt17(cell.powerSigma) << " yield " << fmt17(cell.yield)
           << " buffers " << cell.buffers << " elements " << cell.elements
           << " tuning-area " << fmt17(cell.tuningArea) << "\n";
  }
  result.report = report.str();

  // --- deterministic JSON rendering --------------------------------------
  std::ostringstream json;
  json << "{\"version\":" << kScenarioSchema << ",\"trials\":" << trials
       << ",\"cells\":[";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const ScenarioCell& cell = result.cells[i];
    if (i != 0) json << ",";
    json << "{\"scenario\":\"" << cell.scenario
         << "\",\"period\":" << fmt17(cell.period)
         << ",\"met\":" << (cell.met ? "true" : "false")
         << ",\"wns\":" << fmt17(cell.wns)
         << ",\"area\":" << fmt17(cell.area)
         << ",\"sigma\":" << fmt17(cell.designSigma)
         << ",\"worst_path_sigma\":" << fmt17(cell.worstPathSigma)
         << ",\"power_mean\":" << fmt17(cell.powerMean)
         << ",\"power_sigma\":" << fmt17(cell.powerSigma)
         << ",\"yield\":" << fmt17(cell.yield)
         << ",\"buffers\":" << cell.buffers
         << ",\"elements\":" << cell.elements
         << ",\"tuning_area\":" << fmt17(cell.tuningArea) << "}";
  }
  json << "]}\n";
  result.json = json.str();

  // --- one-line human summary at the tightest (first) period -------------
  const double p0 = job.periods.front();
  std::ostringstream summary;
  summary << "scenarios @" << fmt17(p0).substr(0, 6) << " ns:";
  for (const ScenarioCell& cell : result.cells) {
    if (cell.period != p0) continue;
    char buf[96];
    std::snprintf(buf, sizeof buf, " %s yield %.3f", cell.scenario.c_str(),
                  cell.yield);
    summary << buf;
    if (cell.buffers != 0) summary << " (" << cell.buffers << " buf)";
  }
  result.summary = summary.str();
  return result;
}

}  // namespace sct::postsi
