#pragma once
// Block-based statistical STA (extension): propagates Gaussian arrival
// distributions (mean, sigma) through the timing graph, combining
// reconvergent fan-in with Clark's max approximation. This is the
// alternative to the paper's per-path convolution (section V): instead of
// eq. (11) over worst paths, each endpoint gets the full statistical max
// over *all* of its paths — the comparison bench shows where the paper's
// per-path view under/over-estimates.
//
// Modeling assumptions (documented limits): cell-delay distributions are
// independent Gaussians (the paper's rho = 0), structural path correlation
// from shared sub-paths is ignored by the pairwise Clark reduction — the
// standard block-SSTA simplification.

#include <vector>

#include "sta/sta.hpp"
#include "statlib/stat_library.hpp"

namespace sct::variation {

/// A statistical endpoint result.
struct SstaEndpoint {
  netlist::NetIndex net = netlist::kNoNet;
  std::string name;
  numeric::NormalSummary arrival;  ///< statistical latest arrival
  double required = 0.0;           ///< deterministic required time
  /// P(arrival > required): endpoint timing-failure probability.
  [[nodiscard]] double failureProbability() const noexcept;
  /// mean + 3 sigma margin against the requirement.
  [[nodiscard]] double slack3Sigma() const noexcept {
    return required - (arrival.mean + 3.0 * arrival.sigma);
  }
};

struct SstaResult {
  std::vector<SstaEndpoint> endpoints;
  /// Statistical max over all endpoints' arrivals (the design's critical
  /// delay distribution).
  numeric::NormalSummary designArrival;
  /// Expected number of failing endpoints at the analyzed clock.
  double expectedFailures = 0.0;
  /// Parametric timing yield: probability that every endpoint meets setup
  /// (independent-endpoint approximation).
  double timingYield = 1.0;
};

/// Runs SSTA over an analyzed design. `sta` must have been analyze()d: its
/// per-net slews and loads define the operating points at which the
/// statistical library is interpolated.
[[nodiscard]] SstaResult runSsta(const netlist::Design& design,
                                 const sta::TimingAnalyzer& sta,
                                 const statlib::StatLibrary& library);

}  // namespace sct::variation
