#pragma once
// Monte-Carlo simulation of extracted timing paths (paper section VII.C,
// Figs. 15 and 16): re-evaluates each path cell through the analytic delay
// model with fresh local mismatch draws per trial, optionally adding a
// shared per-die global factor, at any process corner. This substitutes the
// paper's transistor-level Monte Carlo on extracted data paths.
//
// Trials are embarrassingly parallel: trial t draws from counter-based RNG
// streams derived purely from (config.seed, t) — see Rng::child — so the
// sample vector and summary are bit-identical for any thread count.

#include <cstdint>
#include <vector>

#include "charlib/characterizer.hpp"
#include "numeric/statistics.hpp"
#include "sta/sta.hpp"

namespace sct::variation {

struct PathMcConfig {
  std::size_t trials = 200;  ///< paper uses N = 200
  bool includeLocal = true;
  bool includeGlobal = false;
  charlib::ProcessCorner corner = charlib::ProcessCorner::typical();
  std::uint64_t seed = 1;
};

/// Result of one Monte-Carlo run: summary plus the raw samples (for
/// histograms).
struct PathMcResult {
  numeric::NormalSummary summary;
  std::vector<double> samples;
};

/// One path step with everything the delay model needs pre-resolved:
/// catalogue spec and deterministic arc factor are looked up once per path
/// instead of once per trial.
struct ResolvedPathStep {
  const charlib::CellSpec* spec = nullptr;
  double arcFactor = 1.0;  ///< arcDelayFactor of the step's worst (rise) edge
  double inputSlew = 0.0;
  double load = 0.0;
};

class PathMonteCarlo {
 public:
  explicit PathMonteCarlo(const charlib::Characterizer& characterizer)
      : characterizer_(characterizer) {}

  /// Resolves the per-step specs and arc factors of a path once, for reuse
  /// across trials.
  [[nodiscard]] std::vector<ResolvedPathStep> resolvePath(
      const sta::TimingPath& path) const;

  /// One deterministic path delay evaluation for a single trial's draws.
  [[nodiscard]] double evaluateOnce(const sta::TimingPath& path,
                                    const charlib::ProcessCorner& corner,
                                    double globalFactor,
                                    numeric::Rng* localRng) const;

  /// Same evaluation over a pre-resolved path (the per-trial hot loop).
  [[nodiscard]] double evaluateResolved(
      const std::vector<ResolvedPathStep>& steps,
      const charlib::ProcessCorner& corner, double globalFactor,
      numeric::Rng* localRng) const;

  /// Full Monte-Carlo run on a path.
  [[nodiscard]] PathMcResult simulate(const sta::TimingPath& path,
                                      const PathMcConfig& config) const;

 private:
  const charlib::Characterizer& characterizer_;
};

}  // namespace sct::variation
