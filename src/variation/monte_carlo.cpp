#include "variation/monte_carlo.hpp"

#include <cassert>

namespace sct::variation {

double PathMonteCarlo::evaluateOnce(const sta::TimingPath& path,
                                    const charlib::ProcessCorner& corner,
                                    double globalFactor,
                                    numeric::Rng* localRng) const {
  const charlib::DelayModel& model = characterizer_.model();
  const charlib::SpecRegistry& specs = characterizer_.specs();
  double total = 0.0;
  for (const sta::PathStep& step : path.steps) {
    assert(step.cell != nullptr && step.arc != nullptr);
    const charlib::CellSpec* spec = specs.find(step.cell->name());
    assert(spec != nullptr && "path cell missing from catalogue");
    charlib::LocalDeltas deltas;
    if (localRng != nullptr) deltas = model.drawLocal(*spec, *localRng);
    const double base = model.delay(*spec, step.inputSlew, step.load, deltas,
                                    corner.delayFactor, globalFactor);
    // The worst edge used by the setup analysis is the rise edge (its skew
    // factor is the larger one), matching TimingArc::worstDelay.
    total += base * charlib::arcDelayFactor(step.cell->function(),
                                            step.arc->relatedPin,
                                            step.arc->outputPin,
                                            /*rise=*/true);
  }
  return total;
}

PathMcResult PathMonteCarlo::simulate(const sta::TimingPath& path,
                                      const PathMcConfig& config) const {
  const charlib::DelayModel& model = characterizer_.model();
  numeric::Rng master(config.seed);
  numeric::Rng globalRng = master.fork(numeric::Rng::hashTag("global"));
  numeric::Rng localRng = master.fork(numeric::Rng::hashTag("local"));

  PathMcResult result;
  result.samples.reserve(config.trials);
  numeric::RunningStats stats;
  for (std::size_t t = 0; t < config.trials; ++t) {
    // One global factor per trial ("die"), shared by all cells of the path;
    // local draws are fresh per cell instance. Draw the global deviate even
    // when disabled so local-only and global+local runs stay sample-aligned.
    const double globalDraw = model.drawGlobalFactor(globalRng);
    const double globalFactor = config.includeGlobal ? globalDraw : 1.0;
    const double sample = evaluateOnce(
        path, config.corner, globalFactor,
        config.includeLocal ? &localRng : nullptr);
    stats.add(sample);
    result.samples.push_back(sample);
  }
  result.summary = stats.summary();
  return result;
}

}  // namespace sct::variation
