#include "variation/monte_carlo.hpp"

#include <cassert>

#include "parallel/parallel.hpp"

namespace sct::variation {

std::vector<ResolvedPathStep> PathMonteCarlo::resolvePath(
    const sta::TimingPath& path) const {
  const charlib::SpecRegistry& specs = characterizer_.specs();
  std::vector<ResolvedPathStep> out;
  out.reserve(path.steps.size());
  for (const sta::PathStep& step : path.steps) {
    assert(step.cell != nullptr && step.arc != nullptr);
    ResolvedPathStep resolved;
    resolved.spec = specs.find(step.cell->name());
    assert(resolved.spec != nullptr && "path cell missing from catalogue");
    // The worst edge used by the setup analysis is the rise edge (its skew
    // factor is the larger one), matching TimingArc::worstDelay.
    resolved.arcFactor = charlib::arcDelayFactor(step.cell->function(),
                                                 step.arc->relatedPin,
                                                 step.arc->outputPin,
                                                 /*rise=*/true);
    resolved.inputSlew = step.inputSlew;
    resolved.load = step.load;
    out.push_back(resolved);
  }
  return out;
}

double PathMonteCarlo::evaluateResolved(
    const std::vector<ResolvedPathStep>& steps,
    const charlib::ProcessCorner& corner, double globalFactor,
    numeric::Rng* localRng) const {
  const charlib::DelayModel& model = characterizer_.model();
  double total = 0.0;
  for (const ResolvedPathStep& step : steps) {
    charlib::LocalDeltas deltas;
    if (localRng != nullptr) deltas = model.drawLocal(*step.spec, *localRng);
    const double base =
        model.delay(*step.spec, step.inputSlew, step.load, deltas,
                    corner.delayFactor, globalFactor);
    total += base * step.arcFactor;
  }
  return total;
}

double PathMonteCarlo::evaluateOnce(const sta::TimingPath& path,
                                    const charlib::ProcessCorner& corner,
                                    double globalFactor,
                                    numeric::Rng* localRng) const {
  return evaluateResolved(resolvePath(path), corner, globalFactor, localRng);
}

PathMcResult PathMonteCarlo::simulate(const sta::TimingPath& path,
                                      const PathMcConfig& config) const {
  const charlib::DelayModel& model = characterizer_.model();
  const std::vector<ResolvedPathStep> steps = resolvePath(path);
  const numeric::Rng master(config.seed);
  const std::uint64_t globalTag = numeric::Rng::hashTag("global");
  const std::uint64_t localTag = numeric::Rng::hashTag("local");

  PathMcResult result;
  result.samples.resize(config.trials);
  parallel::parallelFor(config.trials, [&](std::size_t t) {
    // Trial t's generators depend only on (seed, t): one per-die global
    // stream and one local-mismatch stream, derived without touching shared
    // state. Drawing the global deviate even when disabled keeps local-only
    // and global+local runs sample-aligned (same local draws either way —
    // here automatic, since the streams are independent).
    const numeric::Rng trial = master.child(t);
    numeric::Rng globalRng = trial.child(globalTag);
    numeric::Rng localRng = trial.child(localTag);
    const double globalDraw = model.drawGlobalFactor(globalRng);
    const double globalFactor = config.includeGlobal ? globalDraw : 1.0;
    result.samples[t] =
        evaluateResolved(steps, config.corner, globalFactor,
                         config.includeLocal ? &localRng : nullptr);
  });

  // Fixed-grain chunked reduction: summary is bit-identical for any thread
  // count (see parallelReduce contract).
  const numeric::RunningStats stats =
      parallel::parallelReduce(
          result.samples.size(), numeric::RunningStats{},
          [&](numeric::RunningStats& acc, std::size_t i) {
            acc.add(result.samples[i]);
          },
          [](numeric::RunningStats& acc, const numeric::RunningStats& other) {
            acc.merge(other);
          });
  result.summary = stats.summary();
  return result;
}

}  // namespace sct::variation
