#pragma once
// Local-variation statistics of timing paths and whole designs
// (paper section V): per-cell (mean, sigma) is bilinearly interpolated from
// the statistical library at the cell's actual operating point, then
// convolved along the path (eqs. (5)-(10)) and across endpoint paths
// (eq. (11)).

#include <span>
#include <vector>

#include "sta/sta.hpp"
#include "statlib/stat_library.hpp"

namespace sct::variation {

/// Distribution parameters of one path.
struct PathStats {
  double mean = 0.0;   ///< eq. (5): sum of cell delay means [ns]
  double sigma = 0.0;  ///< eq. (9)/(10) [ns]
  std::size_t depth = 0;  ///< number of cells on the path
};

/// Distribution parameters of a design (eq. (11)).
struct DesignStats {
  double mean = 0.0;
  double sigma = 0.0;
  std::size_t paths = 0;
};

class PathStatistics {
 public:
  /// rho is the pairwise cell-delay correlation of eq. (9); the paper argues
  /// rho = 0 (eq. (10)) since local mismatch is uncorrelated.
  explicit PathStatistics(const statlib::StatLibrary& library, double rho = 0.0)
      : library_(library), rho_(rho) {}

  [[nodiscard]] double rho() const noexcept { return rho_; }

  /// Per-step (mean, sigma) at the step's (input slew, output load).
  [[nodiscard]] numeric::NormalSummary stepStats(const sta::PathStep& step) const;

  /// Convolution along one traced path.
  [[nodiscard]] PathStats pathStats(const sta::TimingPath& path) const;

  /// Eq. (11) over a path population (typically one worst path per unique
  /// endpoint).
  [[nodiscard]] DesignStats designStats(
      std::span<const sta::TimingPath> paths) const;

 private:
  const statlib::StatLibrary& library_;
  double rho_;
};

/// Convolution helpers shared with tests (pure math, no library access).
[[nodiscard]] double convolveMean(std::span<const double> means) noexcept;
/// Eq. (9) with uniform pairwise correlation rho.
[[nodiscard]] double convolveSigma(std::span<const double> sigmas,
                                   double rho) noexcept;

}  // namespace sct::variation
