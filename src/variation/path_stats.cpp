#include "variation/path_stats.hpp"

#include <cassert>
#include <cmath>

namespace sct::variation {

double convolveMean(std::span<const double> means) noexcept {
  double sum = 0.0;
  for (double m : means) sum += m;
  return sum;
}

double convolveSigma(std::span<const double> sigmas, double rho) noexcept {
  // Eq. (9): var = sum sigma_i^2 + rho * sum_{i != j} sigma_i sigma_j.
  // The cross term is computed as (sum sigma)^2 - sum sigma^2.
  double sumSq = 0.0;
  double sum = 0.0;
  for (double s : sigmas) {
    sumSq += s * s;
    sum += s;
  }
  const double cross = sum * sum - sumSq;
  const double var = sumSq + rho * cross;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

numeric::NormalSummary PathStatistics::stepStats(
    const sta::PathStep& step) const {
  assert(step.cell != nullptr && step.arc != nullptr);
  const statlib::StatCell* cell = library_.findCell(step.cell->name());
  if (cell == nullptr) return {};
  const statlib::StatArc* arc =
      cell->findArc(step.arc->relatedPin, step.arc->outputPin);
  if (arc == nullptr) return {};
  return arc->worstDelayStats(step.inputSlew, step.load);
}

PathStats PathStatistics::pathStats(const sta::TimingPath& path) const {
  std::vector<double> means;
  std::vector<double> sigmas;
  means.reserve(path.steps.size());
  sigmas.reserve(path.steps.size());
  for (const sta::PathStep& step : path.steps) {
    const numeric::NormalSummary s = stepStats(step);
    means.push_back(s.mean);
    sigmas.push_back(s.sigma);
  }
  PathStats out;
  out.depth = path.steps.size();
  out.mean = convolveMean(means);
  out.sigma = convolveSigma(sigmas, rho_);
  return out;
}

DesignStats PathStatistics::designStats(
    std::span<const sta::TimingPath> paths) const {
  // Eq. (11): the design distribution aggregates the endpoint paths the
  // same way a path aggregates cells (with rho = 0 across paths).
  DesignStats out;
  out.paths = paths.size();
  double varSum = 0.0;
  for (const sta::TimingPath& path : paths) {
    const PathStats stats = pathStats(path);
    out.mean += stats.mean;
    varSum += stats.sigma * stats.sigma;
  }
  out.sigma = std::sqrt(varSum);
  return out;
}

}  // namespace sct::variation
