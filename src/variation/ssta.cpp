#include "variation/ssta.hpp"

#include <cassert>
#include <cmath>

namespace sct::variation {

using numeric::NormalSummary;

double SstaEndpoint::failureProbability() const noexcept {
  if (arrival.sigma < 1e-15) {
    return arrival.mean > required ? 1.0 : 0.0;
  }
  return 1.0 - numeric::normalCdf((required - arrival.mean) / arrival.sigma);
}

namespace {

/// Sum of an arrival distribution and an independent cell-delay
/// distribution: means add, variances add.
NormalSummary propagate(const NormalSummary& arrival,
                        const NormalSummary& delay) noexcept {
  NormalSummary out;
  out.mean = arrival.mean + delay.mean;
  out.sigma = std::sqrt(arrival.sigma * arrival.sigma +
                        delay.sigma * delay.sigma);
  return out;
}

}  // namespace

SstaResult runSsta(const netlist::Design& design,
                   const sta::TimingAnalyzer& sta,
                   const statlib::StatLibrary& library) {
  const sta::ClockSpec& clock = sta.clock();
  std::vector<NormalSummary> arrival(design.netCount());

  // Primary inputs launch deterministically at the external arrival.
  for (const netlist::Port& port : design.ports()) {
    if (port.direction == netlist::PortDirection::kInput) {
      arrival[port.net] = {clock.inputDelay, 0.0};
    }
  }

  for (netlist::InstIndex index : sta.topoOrder()) {
    const netlist::Instance& inst = design.instance(index);
    assert(inst.cell != nullptr);
    const statlib::StatCell* statCell = library.findCell(inst.cell->name());

    if (netlist::numInputs(inst.op) == 0) {
      for (netlist::NetIndex out : inst.outputs) arrival[out] = {0.0, 0.0};
      continue;
    }

    if (netlist::isSequential(inst.op)) {
      for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
        const netlist::NetIndex out = inst.outputs[slot];
        NormalSummary launch{sta.netArrival(out), 0.0};  // fallback
        if (statCell != nullptr) {
          if (const statlib::StatArc* arc = statCell->findArc(
                  "CP", sta::outputPinName(inst, slot))) {
            launch = arc->worstDelayStats(clock.clockSlew, sta.netLoad(out));
          }
        }
        arrival[out] = launch;
      }
      continue;
    }

    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const netlist::NetIndex out = inst.outputs[slot];
      const double load = sta.netLoad(out);
      bool first = true;
      NormalSummary combined;
      for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
        const statlib::StatArc* arc =
            statCell != nullptr
                ? statCell->findArc(sta::inputPinName(inst, i),
                                    sta::outputPinName(inst, slot))
                : nullptr;
        if (arc == nullptr) continue;
        const netlist::NetIndex in = inst.inputs[i];
        const NormalSummary delay =
            arc->worstDelayStats(sta.netSlew(in), load);
        const NormalSummary candidate = propagate(arrival[in], delay);
        combined = first ? candidate : numeric::clarkMax(combined, candidate);
        first = false;
      }
      arrival[out] = combined;
    }
  }

  SstaResult result;
  result.endpoints.reserve(sta.endpoints().size());
  bool first = true;
  for (const sta::Endpoint& ep : sta.endpoints()) {
    SstaEndpoint out;
    out.net = ep.net;
    out.name = sta.endpointName(ep);
    out.arrival = arrival[ep.net];
    out.required = ep.required;
    const double pFail = out.failureProbability();
    result.expectedFailures += pFail;
    result.timingYield *= 1.0 - pFail;
    // Normalize every endpoint to a common deadline so the design-level
    // maximum is meaningful: add the per-endpoint margin (setup) back in.
    NormalSummary normalized = out.arrival;
    normalized.mean += clock.effectivePeriod() - ep.required;
    result.designArrival = first
                               ? normalized
                               : numeric::clarkMax(result.designArrival,
                                                   normalized);
    first = false;
    result.endpoints.push_back(std::move(out));
  }
  return result;
}

}  // namespace sct::variation
