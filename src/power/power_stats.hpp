#pragma once
// Statistical power analysis: per-cell power-sigma LUTs built by Monte
// Carlo through the power model (the power analogue of the Fig. 2
// statistical library), power-based library tuning, and design-level
// dynamic-power statistics of a mapped design.

#include <cstdint>
#include <map>

#include "charlib/characterizer.hpp"
#include "power/power_model.hpp"
#include "sta/sta.hpp"
#include "statlib/stat_library.hpp"
#include "tuning/restriction.hpp"

namespace sct::power {

/// Builds (mean, sigma) transition-energy LUTs for one cell over the same
/// slew/load grid as its delay tables, from `samples` mismatch draws.
[[nodiscard]] statlib::StatLut buildPowerLut(
    const charlib::Characterizer& characterizer, const PowerModel& model,
    const charlib::CellSpec& spec, std::size_t samples, std::uint64_t seed);

/// Power-metric library tuning: confines each cell to the slew/load window
/// where its transition-energy sigma stays below the ceiling [fJ]. Same
/// largest-rectangle mechanics as the delay tuner (section VI applied to a
/// different LUT, as suggested in section III).
[[nodiscard]] tuning::LibraryConstraints tuneLibraryOnPower(
    const charlib::Characterizer& characterizer, const PowerModel& model,
    double energySigmaCeiling, std::size_t samples = 50,
    std::uint64_t seed = 2014);

/// Design-level dynamic-power statistics of a mapped, analyzed design.
struct DesignPower {
  double meanPower = 0.0;   ///< uW, at the given activity
  double sigmaPower = 0.0;  ///< uW, RSS over cell instances (independent
                            ///< local mismatch)
  std::size_t cells = 0;
};

[[nodiscard]] DesignPower analyzeDesignPower(
    const netlist::Design& design, const sta::TimingAnalyzer& sta,
    const charlib::Characterizer& characterizer, const PowerModel& model,
    double activity, std::size_t samples = 50, std::uint64_t seed = 7);

}  // namespace sct::power
