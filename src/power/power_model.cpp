#include "power/power_model.hpp"

#include <algorithm>
#include <cassert>

namespace sct::power {

double PowerModel::transitionEnergy(const charlib::CellSpec& spec, double slew,
                                    double load,
                                    const charlib::LocalDeltas& local,
                                    double globalFactor) const noexcept {
  assert(slew >= 0.0 && load >= 0.0);
  const liberty::FunctionTraits& t = liberty::traits(spec.function);
  // Internal (parasitic-capacitance) energy: scales with the topology and
  // the drive strength, inherits the intrinsic-delay mismatch.
  const double internal = params_.internalEnergy * t.parasitic *
                          spec.driveStrength *
                          (1.0 + params_.internalFraction * local.dIntrinsic);
  // Load charging: E = C * Vdd^2 (pF * V^2 = pJ -> x1000 fJ). Pure physics,
  // no mismatch: the load capacitance belongs to the fanout, not this cell.
  const double charging = load * params_.vdd * params_.vdd * 1e3;
  // Short-circuit: crowbar conduction while the input traverses the
  // threshold band; longer for slow edges and weak (high-R) stacks; carries
  // the drive mismatch.
  const double shortCircuit = params_.shortCircuit * slew * spec.driveRes *
                              (1.0 + local.dDrive);
  const double energy = internal + charging + shortCircuit;
  return std::max(0.0, energy) * globalFactor;
}

double PowerModel::dynamicPower(const charlib::CellSpec& spec, double slew,
                                double load, double activity,
                                double periodNs) const noexcept {
  assert(periodNs > 0.0);
  // fJ per transition * transitions per ns = uW (fJ/ns = uW).
  const double energy =
      transitionEnergy(spec, slew, load, charlib::LocalDeltas{}, 1.0);
  return energy * activity / periodNs;
}

}  // namespace sct::power
