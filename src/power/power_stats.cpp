#include "power/power_stats.hpp"

#include <cmath>

#include "numeric/statistics.hpp"
#include "tuning/rectangle.hpp"

namespace sct::power {

statlib::StatLut buildPowerLut(const charlib::Characterizer& characterizer,
                               const PowerModel& model,
                               const charlib::CellSpec& spec,
                               std::size_t samples, std::uint64_t seed) {
  const numeric::Axis& slewAxis = characterizer.config().slewAxis;
  const numeric::Axis loadAxis = characterizer.loadAxisFor(spec);
  statlib::StatLut lut(slewAxis, loadAxis);

  // One mismatch draw per sample, applied across the whole grid (one
  // physical instance per "die", exactly like the delay characterization).
  std::vector<numeric::RunningStats> stats(slewAxis.size() * loadAxis.size());
  numeric::Rng master(seed);
  numeric::Rng cellRng = master.fork(numeric::Rng::hashTag(spec.name));
  for (std::size_t k = 0; k < samples; ++k) {
    const charlib::LocalDeltas deltas =
        characterizer.model().drawLocal(spec, cellRng);
    for (std::size_t r = 0; r < slewAxis.size(); ++r) {
      for (std::size_t c = 0; c < loadAxis.size(); ++c) {
        stats[r * loadAxis.size() + c].add(model.transitionEnergy(
            spec, slewAxis[r], loadAxis[c], deltas));
      }
    }
  }
  for (std::size_t r = 0; r < slewAxis.size(); ++r) {
    for (std::size_t c = 0; c < loadAxis.size(); ++c) {
      lut.mean().at(r, c) = stats[r * loadAxis.size() + c].mean();
      lut.sigma().at(r, c) = stats[r * loadAxis.size() + c].stddev();
    }
  }
  return lut;
}

tuning::LibraryConstraints tuneLibraryOnPower(
    const charlib::Characterizer& characterizer, const PowerModel& model,
    double energySigmaCeiling, std::size_t samples, std::uint64_t seed) {
  tuning::LibraryConstraints constraints;
  for (const charlib::CellSpec& spec : characterizer.specs().all()) {
    const liberty::FunctionTraits& traits = liberty::traits(spec.function);
    if (traits.numDataInputs == 0 && !traits.sequential) continue;  // ties
    const statlib::StatLut lut =
        buildPowerLut(characterizer, model, spec, samples, seed);
    const auto rect = tuning::largestRectangle(
        tuning::BinaryLut::thresholdBelow(lut.sigma(), energySigmaCeiling));
    if (!rect) {
      constraints.markUnusable(spec.name);
      continue;
    }
    tuning::PinWindow window;
    window.minSlew = rect->rowLo == 0 ? 0.0 : lut.slewAxis()[rect->rowLo];
    window.maxSlew = lut.slewAxis()[rect->rowHi];
    window.minLoad = rect->colLo == 0 ? 0.0 : lut.loadAxis()[rect->colLo];
    window.maxLoad = lut.loadAxis()[rect->colHi];
    tuning::CellConstraint constraint;
    constraint.sigmaThreshold = energySigmaCeiling;
    const auto outputs = liberty::outputNames(spec.function);
    for (std::size_t o = 0; o < traits.numOutputs; ++o) {
      constraint.pinWindows.emplace(std::string(outputs[o]), window);
    }
    constraints.setCell(spec.name, std::move(constraint));
  }
  return constraints;
}

DesignPower analyzeDesignPower(const netlist::Design& design,
                               const sta::TimingAnalyzer& sta,
                               const charlib::Characterizer& characterizer,
                               const PowerModel& model, double activity,
                               std::size_t samples, std::uint64_t seed) {
  DesignPower out;
  const double period = sta.clock().period;
  numeric::Rng master(seed);
  double varSum = 0.0;  // (uW)^2

  for (std::size_t i = 0; i < design.instanceCount(); ++i) {
    const netlist::Instance& inst =
        design.instance(static_cast<netlist::InstIndex>(i));
    if (!inst.alive || inst.cell == nullptr) continue;
    const charlib::CellSpec* spec =
        characterizer.specs().find(inst.cell->name());
    if (spec == nullptr) continue;  // cells outside the catalogue

    // Operating point: worst input slew, total driven load.
    double slew = sta.clock().clockSlew;
    for (netlist::NetIndex in : inst.inputs) {
      slew = std::max(slew, sta.netSlew(in));
    }
    double load = 0.0;
    for (netlist::NetIndex outNet : inst.outputs) {
      load += sta.netLoad(outNet);
    }

    // Per-instance energy statistics from fresh mismatch draws.
    numeric::Rng instRng = master.fork(numeric::Rng::hashTag(inst.name));
    numeric::RunningStats energy;
    for (std::size_t k = 0; k < samples; ++k) {
      energy.add(model.transitionEnergy(
          *spec, slew, load, characterizer.model().drawLocal(*spec, instRng)));
    }
    const double toPower = activity / period;  // fJ -> uW
    out.meanPower += energy.mean() * toPower;
    const double sigmaPower = energy.stddev() * toPower;
    varSum += sigmaPower * sigmaPower;
    ++out.cells;
  }
  out.sigmaPower = std::sqrt(varSum);
  return out;
}

}  // namespace sct::power
