#pragma once
// Transition-power extension (paper section III: "the methods which will be
// described can also be adjusted to measure the influence of local
// variation on other properties, such as transition power").
//
// Per-transition switching energy of a cell instance, built on the same
// CellSpec/mismatch machinery as the delay model:
//   E(slew, load) = internal energy (topology)          -- E0 term
//                 + load charging energy (C * V^2)      -- dominant at load
//                 + short-circuit energy (grows with input slew and with
//                   the drive resistance: slow edges through weak stacks
//                   conduct crowbar current longer).
// Mismatch enters through the same per-instance deltas as delay, so weak
// cells have both higher delay sigma and higher power sigma.

#include "charlib/delay_model.hpp"

namespace sct::power {

struct PowerParams {
  double internalEnergy = 0.8;   ///< fJ per unit parasitic at unit drive
  double vdd = 1.1;              ///< V
  double shortCircuit = 12.0;    ///< fJ per (ns slew) x (kOhm drive)
  double internalFraction = 0.9; ///< mismatch coupling of the internal term
};

class PowerModel {
 public:
  PowerModel(const charlib::DelayModel& delayModel, PowerParams params = {})
      : delay_model_(delayModel), params_(params) {}

  [[nodiscard]] const PowerParams& params() const noexcept { return params_; }

  /// Energy of one output transition [fJ] for a given instance mismatch.
  [[nodiscard]] double transitionEnergy(const charlib::CellSpec& spec,
                                        double slew, double load,
                                        const charlib::LocalDeltas& local,
                                        double globalFactor = 1.0) const noexcept;

  /// Average dynamic power [uW] of a cell toggling with the given activity
  /// (transitions per clock) at a clock period [ns].
  [[nodiscard]] double dynamicPower(const charlib::CellSpec& spec, double slew,
                                    double load, double activity,
                                    double periodNs) const noexcept;

 private:
  const charlib::DelayModel& delay_model_;
  PowerParams params_;
};

}  // namespace sct::power
