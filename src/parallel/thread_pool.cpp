#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sct::parallel {

namespace {

thread_local bool t_on_worker_thread = false;

std::size_t hardwareThreads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<std::size_t>(hw) : 0;  // 1 core: stay serial
}

struct GlobalPool {
  Mutex mutex;
  std::unique_ptr<ThreadPool> pool SCT_GUARDED_BY(mutex);
  std::size_t threads SCT_GUARDED_BY(mutex) = 0;
  bool resolved SCT_GUARDED_BY(mutex) = false;
};

GlobalPool& globalPool() {
  static GlobalPool instance;
  return instance;
}

std::size_t resolveLocked(GlobalPool& g) SCT_REQUIRES(g.mutex) {
  if (!g.resolved) {
    const std::string spec = env::get("SCT_THREADS").value_or("");
    g.threads = parseThreadSpec(spec, hardwareThreads());
    g.resolved = true;
  }
  return g.threads;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const LockGuard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notifyOne();
}

bool ThreadPool::onWorkerThread() noexcept { return t_on_worker_thread; }

void ThreadPool::workerLoop(std::size_t workerIndex) {
  t_on_worker_thread = true;
  // Per-worker utilization split (DESIGN.md §12): busy = executing tasks,
  // idle = parked on the queue. Registered per worker index, so pool
  // rebuilds keep accumulating into the same instruments.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::string prefix =
      "parallel.worker." + std::to_string(workerIndex) + ".";
  obs::Counter& busyNs = registry.counter(prefix + "busy_ns");
  obs::Counter& idleNs = registry.counter(prefix + "idle_ns");
  obs::Counter& allBusyNs = registry.counter("parallel.workers.busy_ns");
  obs::Counter& allIdleNs = registry.counter("parallel.workers.idle_ns");
  for (;;) {
    std::function<void()> task;
    {
      const bool timed = obs::metricsEnabled();
      const std::uint64_t waitStart = timed ? obs::monotonicNanos() : 0;
      const LockGuard lock(mutex_);
      // Explicit wait loop (not a predicate lambda) so the thread-safety
      // analysis sees the guarded reads under mutex_.
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (timed) {
        const std::uint64_t waited = obs::monotonicNanos() - waitStart;
        idleNs.add(waited);
        allIdleNs.add(waited);
      }
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const bool timed = obs::metricsEnabled();
    const std::uint64_t runStart = timed ? obs::monotonicNanos() : 0;
    task();
    if (timed) {
      const std::uint64_t ran = obs::monotonicNanos() - runStart;
      busyNs.add(ran);
      allBusyNs.add(ran);
    }
  }
}

std::size_t threadCount() {
  GlobalPool& g = globalPool();
  const LockGuard lock(g.mutex);
  return resolveLocked(g);
}

void setThreadCount(std::size_t n) {
  GlobalPool& g = globalPool();
  const LockGuard lock(g.mutex);
  if (g.resolved && g.threads == n) return;
  g.pool.reset();  // join existing workers before resizing
  g.threads = n;
  g.resolved = true;
}

std::size_t parseThreadSpec(std::string_view spec,
                            std::size_t fallback) noexcept {
  if (spec.empty() || spec == "auto") return fallback;
  if (spec == "serial") return 0;
  return env::parseSize("thread spec", spec, fallback, kMaxThreadSpec);
}

namespace detail {

void runChunks(std::size_t chunks,
               const std::function<void(std::size_t)>& chunkFn) {
  if (chunks == 0) return;
  // One-time registration; afterwards each region costs two relaxed
  // fetch_adds (or the disabled-branch inside Counter::add).
  static obs::Counter& regionCount =
      obs::MetricsRegistry::global().counter("parallel.regions");
  static obs::Counter& chunkCount =
      obs::MetricsRegistry::global().counter("parallel.chunks");
  static obs::Counter& serialRegionCount =
      obs::MetricsRegistry::global().counter("parallel.serial_regions");
  static obs::Counter& taskCount =
      obs::MetricsRegistry::global().counter("parallel.tasks");
  SCT_TRACE_SPAN("parallel.region");
  regionCount.inc();
  chunkCount.add(chunks);

  std::size_t workers = 0;
  ThreadPool* pool = nullptr;
  if (chunks > 1 && !ThreadPool::onWorkerThread()) {
    GlobalPool& g = globalPool();
    const LockGuard lock(g.mutex);
    workers = resolveLocked(g);
    if (workers > 0) {
      if (!g.pool) g.pool = std::make_unique<ThreadPool>(workers);
      pool = g.pool.get();
    }
  }

  if (pool == nullptr) {
    serialRegionCount.inc();
    for (std::size_t c = 0; c < chunks; ++c) {
      SCT_TRACE_SPAN("parallel.chunk");
      chunkFn(c);
    }
    return;
  }

  // Shared work-claiming state: chunk *contents* are fixed by the caller, so
  // which thread claims which chunk never affects results, only wall-clock.
  // `next`/`done` are lock-free claim counters; only the first-error slot
  // needs the mutex.
  struct Region {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    Mutex mutex;
    CondVar cv;
    std::exception_ptr error SCT_GUARDED_BY(mutex);  ///< first failure
  };
  auto region = std::make_shared<Region>();

  auto drive = [region, chunks, &chunkFn] {
    for (;;) {
      const std::size_t c = region->next.fetch_add(1);
      if (c >= chunks) break;
      try {
        SCT_TRACE_SPAN("parallel.chunk");
        chunkFn(c);
      } catch (...) {
        const LockGuard lock(region->mutex);
        if (!region->error) region->error = std::current_exception();
      }
      if (region->done.fetch_add(1) + 1 == chunks) {
        const LockGuard lock(region->mutex);
        region->cv.notifyAll();
      }
    }
  };

  const std::size_t helpers = std::min(workers, chunks - 1);
  taskCount.add(helpers);
  for (std::size_t i = 0; i < helpers; ++i) pool->submit(drive);
  drive();  // the calling thread works too

  const LockGuard lock(region->mutex);
  while (region->done.load() != chunks) region->cv.wait(region->mutex);
  if (region->error) std::rethrow_exception(region->error);
}

}  // namespace detail

}  // namespace sct::parallel
