#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

namespace sct::parallel {

namespace {

thread_local bool t_on_worker_thread = false;

std::size_t hardwareThreads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<std::size_t>(hw) : 0;  // 1 core: stay serial
}

struct GlobalPool {
  std::mutex mutex;
  std::unique_ptr<ThreadPool> pool;
  std::size_t threads = 0;
  bool resolved = false;
};

GlobalPool& globalPool() {
  static GlobalPool instance;
  return instance;
}

std::size_t resolveLocked(GlobalPool& g) {
  if (!g.resolved) {
    const char* env = std::getenv("SCT_THREADS");
    g.threads = parseThreadSpec(env != nullptr ? env : "", hardwareThreads());
    g.resolved = true;
  }
  return g.threads;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::onWorkerThread() noexcept { return t_on_worker_thread; }

void ThreadPool::workerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t threadCount() {
  GlobalPool& g = globalPool();
  const std::lock_guard<std::mutex> lock(g.mutex);
  return resolveLocked(g);
}

void setThreadCount(std::size_t n) {
  GlobalPool& g = globalPool();
  const std::lock_guard<std::mutex> lock(g.mutex);
  if (g.resolved && g.threads == n) return;
  g.pool.reset();  // join existing workers before resizing
  g.threads = n;
  g.resolved = true;
}

std::size_t parseThreadSpec(std::string_view spec,
                            std::size_t fallback) noexcept {
  if (spec.empty() || spec == "auto") return fallback;
  if (spec == "serial") return 0;
  std::size_t value = 0;
  for (char ch : spec) {
    if (ch < '0' || ch > '9') {
      std::fprintf(stderr,
                   "sct: ignoring invalid thread spec '%.*s' "
                   "(want a count, 'serial' or 'auto'); using %zu\n",
                   static_cast<int>(spec.size()), spec.data(), fallback);
      return fallback;
    }
    value = value * 10 + static_cast<std::size_t>(ch - '0');
    if (value > kMaxThreadSpec) {
      std::fprintf(stderr,
                   "sct: thread spec '%.*s' out of range (max %zu); "
                   "using %zu\n",
                   static_cast<int>(spec.size()), spec.data(), kMaxThreadSpec,
                   fallback);
      return fallback;
    }
  }
  return value;
}

namespace detail {

void runChunks(std::size_t chunks,
               const std::function<void(std::size_t)>& chunkFn) {
  if (chunks == 0) return;

  std::size_t workers = 0;
  ThreadPool* pool = nullptr;
  if (chunks > 1 && !ThreadPool::onWorkerThread()) {
    GlobalPool& g = globalPool();
    const std::lock_guard<std::mutex> lock(g.mutex);
    workers = resolveLocked(g);
    if (workers > 0) {
      if (!g.pool) g.pool = std::make_unique<ThreadPool>(workers);
      pool = g.pool.get();
    }
  }

  if (pool == nullptr) {
    for (std::size_t c = 0; c < chunks; ++c) chunkFn(c);
    return;
  }

  // Shared work-claiming state: chunk *contents* are fixed by the caller, so
  // which thread claims which chunk never affects results, only wall-clock.
  struct Region {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // first failure, guarded by mutex
  };
  auto region = std::make_shared<Region>();

  auto drive = [region, chunks, &chunkFn] {
    for (;;) {
      const std::size_t c = region->next.fetch_add(1);
      if (c >= chunks) break;
      try {
        chunkFn(c);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(region->mutex);
        if (!region->error) region->error = std::current_exception();
      }
      if (region->done.fetch_add(1) + 1 == chunks) {
        const std::lock_guard<std::mutex> lock(region->mutex);
        region->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers, chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) pool->submit(drive);
  drive();  // the calling thread works too

  std::unique_lock<std::mutex> lock(region->mutex);
  region->cv.wait(lock,
                  [&] { return region->done.load() == chunks; });
  if (region->error) std::rethrow_exception(region->error);
}

}  // namespace detail

}  // namespace sct::parallel
