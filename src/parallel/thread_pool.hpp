#pragma once
// Lazily-initialized global worker pool behind the parallelFor/parallelMap/
// parallelReduce primitives (parallel.hpp). The pool is an implementation
// detail: nothing outside src/parallel should need to talk to it directly.
//
// Sizing: the first parallel region reads SCT_THREADS (0 or "serial" forces
// the serial fallback, absent/auto uses the hardware concurrency);
// setThreadCount() overrides both at any time. Thread count only affects
// wall-clock time — every primitive is specified to produce results that are
// bit-identical for any thread count, including 0.
//
// Lock discipline (DESIGN.md §16): mutex_ guards the task queue and the stop
// flag; workers park on cv_ under it. The annotations are checked by the CI
// thread-safety wall (clang++ -Werror=thread-safety).

#include <cstddef>
#include <deque>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

#include "core/sync.hpp"

namespace sct::parallel {

/// Fixed-size worker pool with a shared FIFO task queue. Construction spawns
/// the workers; destruction drains nothing — callers must not enqueue work
/// they do not wait for.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workerCount() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task for any worker to pick up.
  void submit(std::function<void()> task) SCT_EXCLUDES(mutex_);

  /// True when called from one of this pool's worker threads (used to run
  /// nested parallel regions inline instead of deadlocking on the queue).
  [[nodiscard]] static bool onWorkerThread() noexcept;

 private:
  void workerLoop(std::size_t workerIndex) SCT_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< written by ctor/dtor only
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ SCT_GUARDED_BY(mutex_);
  bool stop_ SCT_GUARDED_BY(mutex_) = false;
};

/// Number of worker threads parallel regions may use; 0 means serial
/// execution on the calling thread. Resolved lazily from SCT_THREADS (or the
/// hardware concurrency) on first call.
[[nodiscard]] std::size_t threadCount();

/// Overrides the thread count; 0 forces the serial fallback (the mode the
/// determinism tests pin one side of their comparison to). Tears down and
/// re-creates the pool as needed. Not safe to call from inside a parallel
/// region.
void setThreadCount(std::size_t n);

/// Largest accepted thread-spec count; anything above it is treated as
/// invalid input (a typo or overflow), not as a request for 10^19 workers.
inline constexpr std::size_t kMaxThreadSpec = 4096;

/// Parses an SCT_THREADS-style spec: "" / "auto" -> fallback, "serial" -> 0,
/// otherwise a base-10 count. Garbage text or a count above kMaxThreadSpec
/// (including would-be u64 overflow) warns on stderr and returns the
/// fallback. Exposed for tests.
[[nodiscard]] std::size_t parseThreadSpec(std::string_view spec,
                                          std::size_t fallback) noexcept;

namespace detail {

/// Runs chunkFn(c) for every c in [0, chunks) across the pool (the calling
/// thread participates). Exceptions are captured and the first one (lowest
/// observed) is rethrown on the caller after all chunks finished. Runs
/// serially when the pool is disabled, the region is nested inside a worker,
/// or chunks <= 1.
void runChunks(std::size_t chunks,
               const std::function<void(std::size_t)>& chunkFn);

}  // namespace detail

}  // namespace sct::parallel
