#pragma once
// Deterministic data-parallel primitives over the global thread pool
// (thread_pool.hpp). Design contract shared by all three:
//
//   * Work is split into chunks whose boundaries depend only on the problem
//     size (never on the thread count), and per-chunk results are combined
//     in ascending chunk order on the calling thread. Together with
//     order-independent per-index work (e.g. counter-based RNG streams, one
//     output slot per index) this makes every primitive produce bit-identical
//     results for any thread count, including the serial fallback (0).
//   * Exceptions thrown by the body are rethrown on the calling thread.
//   * Nested parallel regions execute inline on the worker (no deadlock, no
//     oversubscription).

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace sct::parallel {

/// Chunk size used when the caller does not specify a grain: fixed so chunk
/// boundaries are a pure function of n, splitting into at most kMaxChunks
/// pieces but never below kMinGrain indices per chunk.
[[nodiscard]] constexpr std::size_t defaultGrain(std::size_t n) noexcept {
  constexpr std::size_t kMaxChunks = 64;
  constexpr std::size_t kMinGrain = 16;
  const std::size_t grain = (n + kMaxChunks - 1) / kMaxChunks;
  return grain < kMinGrain ? kMinGrain : grain;
}

/// Calls fn(i) for every i in [0, n). fn must not touch state shared across
/// indices without its own synchronization; writing to index-owned slots is
/// the intended pattern.
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  const std::size_t g = grain != 0 ? grain : defaultGrain(n);
  const std::size_t chunks = (n + g - 1) / g;
  detail::runChunks(chunks, [&](std::size_t c) {
    const std::size_t lo = c * g;
    const std::size_t hi = lo + g < n ? lo + g : n;
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Maps fn over [0, n) into a vector with out[i] == fn(i); the element order
/// matches the serial loop regardless of execution order.
template <typename Fn>
[[nodiscard]] auto parallelMap(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<std::optional<T>> slots(n);
  parallelFor(
      n, [&](std::size_t i) { slots[i].emplace(fn(i)); }, grain);
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Chunked reduction: each chunk folds its indices into a fresh copy of
/// `init` via accum(acc, i); partials are then merged left-to-right in chunk
/// order via merge(acc, partial). Because chunk boundaries are fixed by
/// (n, grain) alone, the floating-point combination order — and therefore
/// the result, bit for bit — is identical for any thread count.
template <typename T, typename AccumFn, typename MergeFn>
[[nodiscard]] T parallelReduce(std::size_t n, T init, AccumFn&& accum,
                               MergeFn&& merge, std::size_t grain = 0) {
  if (n == 0) return init;
  const std::size_t g = grain != 0 ? grain : defaultGrain(n);
  const std::size_t chunks = (n + g - 1) / g;
  std::vector<std::optional<T>> partials(chunks);
  detail::runChunks(chunks, [&](std::size_t c) {
    const std::size_t lo = c * g;
    const std::size_t hi = lo + g < n ? lo + g : n;
    T acc = init;
    for (std::size_t i = lo; i < hi; ++i) accum(acc, i);
    partials[c].emplace(std::move(acc));
  });
  T result = std::move(*partials.front());
  for (std::size_t c = 1; c < chunks; ++c) {
    merge(result, *partials[c]);
  }
  return result;
}

}  // namespace sct::parallel
