#pragma once
// The lint engine: a registry of rules executed over a LintSubject into a
// LintReport (DESIGN.md §11). Adding a rule = subclass Rule in the matching
// *_rules.cpp, append it in that pack's register function, and bump
// kRulePackVersion so cached lint results are invalidated.

#include <memory>
#include <vector>

#include "lint/rule.hpp"

namespace sct::lint {

/// Version of the rule set; part of every cached lint-report key, so a rule
/// change can never be masked by a stale cache entry.
inline constexpr std::uint32_t kRulePackVersion = 3;

class LintEngine {
 public:
  LintEngine() = default;

  // Rules are identity objects owned by the engine.
  LintEngine(LintEngine&&) noexcept = default;
  LintEngine& operator=(LintEngine&&) noexcept = default;
  LintEngine(const LintEngine&) = delete;
  LintEngine& operator=(const LintEngine&) = delete;

  void add(std::unique_ptr<Rule> rule);

  /// Engine with every built-in rule pack registered.
  [[nodiscard]] static LintEngine withAllRules();

  /// Runs every registered rule whose pack is selected by `packs` AND whose
  /// artifact the subject carries; rules execute in registration order.
  [[nodiscard]] LintReport run(const LintSubject& subject,
                               RulePackMask packs = kAllPacks) const;

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules()
      const noexcept {
    return rules_;
  }

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

// Pack registration (each defined in its *_rules.cpp).
void registerLibertyRules(LintEngine& engine);
void registerStatLibRules(LintEngine& engine);
void registerNetlistRules(LintEngine& engine);
void registerConstraintsRules(LintEngine& engine);
void registerClockRules(LintEngine& engine);
void registerEvoRules(LintEngine& engine);

}  // namespace sct::lint
