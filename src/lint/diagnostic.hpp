#pragma once
// Static-analysis diagnostics: one Diagnostic per rule finding, collected
// into a LintReport. Object paths are slash-separated logical locations
// ("lib/INV_X2/ZN/cell_rise", "design/u_42/in0") so a finding can be traced
// to the offending table, pin or instance without file/line information —
// the subjects are in-memory artifacts, not source text.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sct::lint {

enum class Severity : std::uint8_t { kError = 0, kWarning = 1, kInfo = 2 };

[[nodiscard]] std::string_view toString(Severity severity) noexcept;

/// SARIF result level for a severity ("error" / "warning" / "note").
[[nodiscard]] std::string_view sarifLevel(Severity severity) noexcept;

struct Diagnostic {
  std::string ruleId;      ///< e.g. "lib.axis.order"
  Severity severity = Severity::kError;
  std::string objectPath;  ///< e.g. "lib/INV_X2/ZN/cell_rise"
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Ordered collection of findings from one engine run. Diagnostics keep
/// their emission order (rule registration order, then discovery order
/// within a rule), which is deterministic for a given subject.
class LintReport {
 public:
  void add(Diagnostic diagnostic);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return diagnostics_.size(); }

  [[nodiscard]] std::size_t errorCount() const noexcept { return errors_; }
  [[nodiscard]] std::size_t warningCount() const noexcept { return warnings_; }
  [[nodiscard]] std::size_t infoCount() const noexcept { return infos_; }
  [[nodiscard]] bool hasErrors() const noexcept { return errors_ != 0; }

  /// Appends another report's diagnostics (stage gates lint several
  /// subjects into one report).
  void merge(const LintReport& other);

  /// True when any diagnostic carries the rule id (test/CI helper).
  [[nodiscard]] bool hasRule(std::string_view ruleId) const noexcept;

  /// One-line summary, e.g. "2 errors, 1 warning".
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
  std::size_t infos_ = 0;
};

}  // namespace sct::lint
