// Evo rule pack: sanity of evolutionary-tuner configuration (evo.*) before
// a run burns a generation of fitness evaluations on it. A population below
// two cannot recombine; zero generations plus no seeds is an empty search;
// an empty or unknown objective set makes dominance vacuous; inverted gene
// bounds clamp every mutation to a single point.

#include <cmath>
#include <sstream>
#include <string>

#include "lint/engine.hpp"

namespace sct::lint {
namespace {

using evo::EvolveParams;

constexpr const char* kSpecPath = "evo/params";

std::string num(double v) { return std::to_string(v); }

class EvoPopulationRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "evo.population.too-small";
  }
  RulePack pack() const noexcept override { return RulePack::kEvo; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "population must hold at least two individuals for recombination";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const EvolveParams& params = *subject.evolveParams;
    if (params.population < 2) {
      emit(report, kSpecPath,
           "population " + std::to_string(params.population) +
               " cannot run binary tournaments (need >= 2)");
    }
  }
};

class EvoGenerationsRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "evo.generations.zero";
  }
  RulePack pack() const noexcept override { return RulePack::kEvo; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "at least one variation generation must run after the seeded "
           "generation";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    if (subject.evolveParams->generations == 0) {
      emit(report, kSpecPath,
           "generations is 0: the run would only re-evaluate the seeds");
    }
  }
};

class EvoObjectivesRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "evo.objectives.invalid";
  }
  RulePack pack() const noexcept override { return RulePack::kEvo; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "objective set must be a non-empty subset of sigma,area,power";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const std::string& list = subject.evolveParams->objectives;
    std::size_t count = 0;
    std::istringstream stream(list);
    std::string token;
    while (std::getline(stream, token, ',')) {
      if (token.empty()) continue;
      if (token != "sigma" && token != "area" && token != "power") {
        emit(report, kSpecPath,
             "unknown objective '" + token + "' (sigma/area/power)");
        return;
      }
      ++count;
    }
    if (count == 0) {
      emit(report, kSpecPath,
           "objective set '" + list + "' selects nothing to optimize");
    }
  }
};

class EvoGeneBoundsRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "evo.gene-bounds.inverted";
  }
  RulePack pack() const noexcept override { return RulePack::kEvo; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "sigma gene bounds must be finite, non-negative and ordered";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const EvolveParams& params = *subject.evolveParams;
    if (!std::isfinite(params.geneMin) || !std::isfinite(params.geneMax)) {
      emit(report, kSpecPath, "gene bounds must be finite");
      return;
    }
    if (params.geneMin < 0.0) {
      emit(report, kSpecPath,
           "negative sigma thresholds are meaningless (gene-min " +
               num(params.geneMin) + ")");
    }
    if (params.geneMin >= params.geneMax) {
      emit(report, kSpecPath,
           "gene bounds are inverted or collapsed (" + num(params.geneMin) +
               " >= " + num(params.geneMax) + ")");
    }
  }
};

}  // namespace

void registerEvoRules(LintEngine& engine) {
  engine.add(std::make_unique<EvoPopulationRule>());
  engine.add(std::make_unique<EvoGenerationsRule>());
  engine.add(std::make_unique<EvoObjectivesRule>());
  engine.add(std::make_unique<EvoGeneBoundsRule>());
}

}  // namespace sct::lint
