// Constraints rule pack: sanity of tuned per-pin slew/load windows (paper
// section VI.C). An inverted window allows nothing and silently makes a cell
// unusable; windows outside a pin's characterized LUT range mean the tuner
// and the library disagree about the tables; and windows that dodge every
// characterized breakpoint make the largest-rectangle result suspect.

#include <cmath>
#include <string>

#include "lint/engine.hpp"

namespace sct::lint {
namespace {

using tuning::CellConstraint;
using tuning::PinWindow;

constexpr double kTolerance = 1e-12;

std::string pinPath(const std::string& cell, const std::string& pin) {
  return "constraints/" + cell + "/" + pin;
}

/// Axes of the first arc driving `pin`; nullptr when the cell or pin has no
/// characterized tables to compare against.
const liberty::TimingArc* referenceArc(const liberty::Library* library,
                                       const std::string& cellName,
                                       const std::string& pinName) {
  if (library == nullptr) return nullptr;
  const liberty::Cell* cell = library->findCell(cellName);
  if (cell == nullptr) return nullptr;
  const auto arcs = cell->fanoutArcs(pinName);
  return arcs.empty() ? nullptr : arcs.front();
}

class WindowInvertedRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "cst.window.inverted";
  }
  RulePack pack() const noexcept override { return RulePack::kConstraints; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "pin windows must not be empty or inverted";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const auto& [cellName, constraint] : subject.constraints->cells()) {
      for (const auto& [pinName, window] : constraint.pinWindows) {
        if (window.minSlew > window.maxSlew) {
          emit(report, pinPath(cellName, pinName),
               "slew window is inverted (" + std::to_string(window.minSlew) +
                   " > " + std::to_string(window.maxSlew) + ")");
        }
        if (window.minLoad > window.maxLoad) {
          emit(report, pinPath(cellName, pinName),
               "load window is inverted (" + std::to_string(window.minLoad) +
                   " > " + std::to_string(window.maxLoad) + ")");
        }
        if (!std::isfinite(window.minSlew) || !std::isfinite(window.maxSlew) ||
            !std::isfinite(window.minLoad) || !std::isfinite(window.maxLoad)) {
          emit(report, pinPath(cellName, pinName),
               "window bound is non-finite");
        }
      }
    }
  }
};

class WindowRangeRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "cst.window.out-of-range";
  }
  RulePack pack() const noexcept override { return RulePack::kConstraints; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "pin windows must lie inside the characterized LUT range";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const auto& [cellName, constraint] : subject.constraints->cells()) {
      for (const auto& [pinName, window] : constraint.pinWindows) {
        const liberty::TimingArc* arc =
            referenceArc(subject.referenceLibrary, cellName, pinName);
        if (arc == nullptr) continue;  // cst.unknown-cell reports these
        checkAxis(report, cellName, pinName, "slew", window.minSlew,
                  window.maxSlew, arc->riseDelay.slewAxis());
        checkAxis(report, cellName, pinName, "load", window.minLoad,
                  window.maxLoad, arc->riseDelay.loadAxis());
      }
    }
  }

 private:
  void checkAxis(LintReport& report, const std::string& cell,
                 const std::string& pin, const char* axisName, double lo,
                 double hi, const numeric::Axis& axis) const {
    if (axis.empty()) return;
    // A window may start below the first breakpoint (0 means "from the
    // table origin"), but negative bounds or bounds beyond the last
    // breakpoint are outside anything the library characterized.
    if (lo < -kTolerance) {
      emit(report, pinPath(cell, pin),
           std::string(axisName) + " window starts at negative " +
               std::to_string(lo));
    }
    if (hi > axis.back() + kTolerance) {
      emit(report, pinPath(cell, pin),
           std::string(axisName) + " window extends to " + std::to_string(hi) +
               " beyond the characterized range (max " +
               std::to_string(axis.back()) + ")");
    } else if (lo > axis.back() + kTolerance) {
      emit(report, pinPath(cell, pin),
           std::string(axisName) + " window starts at " + std::to_string(lo) +
               " beyond the characterized range (max " +
               std::to_string(axis.back()) + ")");
    }
  }
};

class WindowNoPointRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "cst.window.no-grid-point";
  }
  RulePack pack() const noexcept override { return RulePack::kConstraints; }
  Severity severity() const noexcept override { return Severity::kWarning; }
  std::string_view description() const noexcept override {
    return "pin windows should contain at least one characterized point";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const auto& [cellName, constraint] : subject.constraints->cells()) {
      for (const auto& [pinName, window] : constraint.pinWindows) {
        if (window.minSlew > window.maxSlew ||
            window.minLoad > window.maxLoad) {
          continue;  // cst.window.inverted reports these
        }
        const liberty::TimingArc* arc =
            referenceArc(subject.referenceLibrary, cellName, pinName);
        if (arc == nullptr) continue;
        const bool slewHit = axisHit(window.minSlew, window.maxSlew,
                                     arc->riseDelay.slewAxis());
        const bool loadHit = axisHit(window.minLoad, window.maxLoad,
                                     arc->riseDelay.loadAxis());
        if (slewHit && loadHit) continue;
        emit(report, pinPath(cellName, pinName),
             std::string("window excludes every characterized ") +
                 (slewHit ? "load" : "slew") + " breakpoint");
      }
    }
  }

 private:
  static bool axisHit(double lo, double hi, const numeric::Axis& axis) {
    for (double v : axis) {
      if (v >= lo - kTolerance && v <= hi + kTolerance) return true;
    }
    return false;
  }
};

class UnknownConstraintTargetRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "cst.unknown-cell"; }
  RulePack pack() const noexcept override { return RulePack::kConstraints; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "constraints must reference existing library cells and pins";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const liberty::Library* library = subject.referenceLibrary;
    if (library == nullptr) return;
    for (const auto& [cellName, constraint] : subject.constraints->cells()) {
      const liberty::Cell* cell = library->findCell(cellName);
      if (cell == nullptr) {
        emit(report, "constraints/" + cellName,
             "constraint references unknown cell (library '" +
                 library->name() + "')");
        continue;
      }
      for (const auto& [pinName, window] : constraint.pinWindows) {
        (void)window;
        const liberty::Pin* pin = cell->findPin(pinName);
        if (pin == nullptr) {
          emit(report, pinPath(cellName, pinName),
               "constraint references unknown pin");
        } else if (pin->direction != liberty::PinDirection::kOutput) {
          emit(report, pinPath(cellName, pinName),
               "constrained pin is not an output pin");
        }
      }
    }
  }
};

}  // namespace

void registerConstraintsRules(LintEngine& engine) {
  engine.add(std::make_unique<WindowInvertedRule>());
  engine.add(std::make_unique<WindowRangeRule>());
  engine.add(std::make_unique<WindowNoPointRule>());
  engine.add(std::make_unique<UnknownConstraintTargetRule>());
}

}  // namespace sct::lint
