#pragma once
// The rule side of the lint engine: a LintSubject bundles the artifacts a
// run may inspect, a Rule is one named check over one artifact kind, and
// rules are grouped into packs matching the flow's stage inputs (liberty,
// statlib, netlist, constraints). Rules are stateless const objects; all
// findings go through the LintReport passed to run().

#include <string_view>

#include "clocktree/clock_tree.hpp"
#include "evo/params.hpp"
#include "lint/diagnostic.hpp"
#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "statlib/stat_library.hpp"
#include "tuning/restriction.hpp"

namespace sct::lint {

/// Rule packs, one per flow-stage input kind. A rule belongs to exactly one
/// pack and only runs when the subject carries that pack's artifact.
enum class RulePack : std::uint8_t {
  kLiberty = 0,
  kStatLib = 1,
  kNetlist = 2,
  kConstraints = 3,
  kClock = 4,
  kEvo = 5,
};

[[nodiscard]] std::string_view toString(RulePack pack) noexcept;

/// Bitmask over RulePack for selecting which packs an engine run executes.
using RulePackMask = std::uint8_t;
[[nodiscard]] inline constexpr RulePackMask packBit(RulePack pack) noexcept {
  return static_cast<RulePackMask>(1u << static_cast<std::uint8_t>(pack));
}
inline constexpr RulePackMask kAllPacks = 0x3f;

/// What a lint run inspects. Primary artifacts (library, statLibrary,
/// design, constraints) select which packs run; referenceLibrary is
/// cross-check context (the nominal library) used by statlib, netlist and
/// constraints rules when present — those checks degrade gracefully to
/// skipped when it is null.
struct LintSubject {
  const liberty::Library* library = nullptr;
  const statlib::StatLibrary* statLibrary = nullptr;
  const netlist::Design* design = nullptr;
  const tuning::LibraryConstraints* constraints = nullptr;
  const liberty::Library* referenceLibrary = nullptr;
  /// Post-silicon tuning-element configuration; selects the clock pack.
  const clocktree::TuningElementSpec* clockTuning = nullptr;
  /// Cross-check context for the clock pack (range vs. tree skew); the
  /// rules degrade gracefully to skipped when it is null.
  const clocktree::ClockTree* clockTree = nullptr;
  /// Evolutionary-tuner configuration; selects the evo pack.
  const evo::EvolveParams* evolveParams = nullptr;

  [[nodiscard]] bool carries(RulePack pack) const noexcept {
    switch (pack) {
      case RulePack::kLiberty: return library != nullptr;
      case RulePack::kStatLib: return statLibrary != nullptr;
      case RulePack::kNetlist: return design != nullptr;
      case RulePack::kConstraints: return constraints != nullptr;
      case RulePack::kClock: return clockTuning != nullptr;
      case RulePack::kEvo: return evolveParams != nullptr;
    }
    return false;
  }
};

/// One named static check. Implementations live in the per-pack rule
/// translation units and are registered through the engine's pack
/// registration functions (see engine.hpp: "how to add a rule").
class Rule {
 public:
  virtual ~Rule() = default;

  /// Stable dotted identifier, e.g. "lib.axis.order". Rule ids are part of
  /// the CI contract (SARIF ruleId) and must never be renamed casually.
  [[nodiscard]] virtual std::string_view id() const noexcept = 0;
  [[nodiscard]] virtual RulePack pack() const noexcept = 0;
  [[nodiscard]] virtual Severity severity() const noexcept = 0;
  /// One-line human description (SARIF shortDescription).
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// Inspects the subject and appends findings. Only called when the
  /// subject carries the rule's pack. Must not throw on any subject a
  /// parser or builder can produce — lint runs before everything else.
  virtual void run(const LintSubject& subject, LintReport& report) const = 0;

 protected:
  /// Emission helper stamping the rule's id and severity.
  void emit(LintReport& report, std::string objectPath,
            std::string message) const {
    report.add(Diagnostic{std::string(id()), severity(), std::move(objectPath),
                          std::move(message)});
  }
};

}  // namespace sct::lint
