// Statlib rule pack: sanity of the merged statistical library (paper
// section IV, Fig. 2). Negative or NaN sigmas poison every downstream
// RSS/convolution; a sample count below 2 means the sigma surfaces are
// meaningless; and grids that drifted from the nominal library indicate the
// merge mixed incompatible instances.

#include <cmath>
#include <string>

#include "lint/engine.hpp"

namespace sct::lint {
namespace {

using statlib::StatArc;
using statlib::StatCell;
using statlib::StatLut;

std::string arcPath(const StatCell& cell, const StatArc& arc,
                    const char* edge) {
  return "stat/" + cell.name() + "/" + arc.relatedPin + "->" + arc.outputPin +
         "/" + edge;
}

/// Applies `fn(edgeName, lut)` to both edges of an arc.
template <class Fn>
void forEachEdge(const StatArc& arc, Fn&& fn) {
  fn("rise", arc.rise);
  fn("fall", arc.fall);
}

class SigmaValidRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "stat.sigma.invalid"; }
  RulePack pack() const noexcept override { return RulePack::kStatLib; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "sigma surfaces must be finite and non-negative";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const StatCell* cell : subject.statLibrary->cells()) {
      for (const StatArc& arc : cell->arcs()) {
        forEachEdge(arc, [&](const char* edge, const StatLut& lut) {
          for (std::size_t r = 0; r < lut.rows(); ++r) {
            for (std::size_t c = 0; c < lut.cols(); ++c) {
              const double sigma = lut.sigma().at(r, c);
              if (std::isfinite(sigma) && sigma >= 0.0) continue;
              emit(report, arcPath(*cell, arc, edge) + ".sigma",
                   std::string(std::isfinite(sigma) ? "negative"
                                                    : "non-finite") +
                       " sigma " + std::to_string(sigma) + " at [" +
                       std::to_string(r) + "," + std::to_string(c) + "]");
              return;
            }
          }
        });
      }
    }
  }
};

class MeanValidRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "stat.mean.invalid"; }
  RulePack pack() const noexcept override { return RulePack::kStatLib; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "mean surfaces must be finite and non-negative";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const StatCell* cell : subject.statLibrary->cells()) {
      for (const StatArc& arc : cell->arcs()) {
        forEachEdge(arc, [&](const char* edge, const StatLut& lut) {
          for (std::size_t r = 0; r < lut.rows(); ++r) {
            for (std::size_t c = 0; c < lut.cols(); ++c) {
              const double mean = lut.mean().at(r, c);
              if (std::isfinite(mean) && mean >= 0.0) continue;
              emit(report, arcPath(*cell, arc, edge) + ".mean",
                   std::string(std::isfinite(mean) ? "negative" : "non-finite") +
                       " mean delay " + std::to_string(mean) + " at [" +
                       std::to_string(r) + "," + std::to_string(c) + "]");
              return;
            }
          }
        });
      }
    }
  }
};

class SigmaExceedsMeanRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "stat.sigma.exceeds-mean";
  }
  RulePack pack() const noexcept override { return RulePack::kStatLib; }
  Severity severity() const noexcept override { return Severity::kWarning; }
  std::string_view description() const noexcept override {
    return "a local-variation sigma above its mean delay is implausible";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const StatCell* cell : subject.statLibrary->cells()) {
      for (const StatArc& arc : cell->arcs()) {
        forEachEdge(arc, [&](const char* edge, const StatLut& lut) {
          for (std::size_t r = 0; r < lut.rows(); ++r) {
            for (std::size_t c = 0; c < lut.cols(); ++c) {
              const double mean = lut.mean().at(r, c);
              const double sigma = lut.sigma().at(r, c);
              if (!std::isfinite(mean) || !std::isfinite(sigma)) continue;
              if (mean <= 0.0 || sigma <= mean) continue;
              emit(report, arcPath(*cell, arc, edge),
                   "sigma " + std::to_string(sigma) + " exceeds mean " +
                       std::to_string(mean) + " at [" + std::to_string(r) +
                       "," + std::to_string(c) + "]");
              return;
            }
          }
        });
      }
    }
  }
};

class SampleCountRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "stat.samples.insufficient";
  }
  RulePack pack() const noexcept override { return RulePack::kStatLib; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "the merged-instance count must support a sigma estimate";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const std::size_t samples = subject.statLibrary->sampleCount();
    if (samples >= 2) return;
    emit(report, "stat/" + subject.statLibrary->name(),
         "statistical tables were merged from " + std::to_string(samples) +
             " library instance(s); sigma needs at least 2");
  }
};

class GridMismatchRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "stat.grid.mismatch"; }
  RulePack pack() const noexcept override { return RulePack::kStatLib; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "statistical grids must match the nominal library's arc tables";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    // Cross-check; skipped without a nominal reference library.
    const liberty::Library* nominal = subject.referenceLibrary;
    if (nominal == nullptr) return;
    for (const StatCell* cell : subject.statLibrary->cells()) {
      const liberty::Cell* nominalCell = nominal->findCell(cell->name());
      if (nominalCell == nullptr) {
        emit(report, "stat/" + cell->name(),
             "cell is not present in the nominal library '" + nominal->name() +
                 "'");
        continue;
      }
      for (const StatArc& arc : cell->arcs()) {
        const liberty::TimingArc* nominalArc =
            nominalCell->findArc(arc.relatedPin, arc.outputPin);
        if (nominalArc == nullptr) {
          emit(report, arcPath(*cell, arc, "rise"),
               "arc has no counterpart in the nominal library");
          continue;
        }
        checkAxes(report, *cell, arc, "rise", arc.rise,
                  nominalArc->riseDelay);
        checkAxes(report, *cell, arc, "fall", arc.fall,
                  nominalArc->fallDelay);
      }
    }
  }

 private:
  void checkAxes(LintReport& report, const StatCell& cell, const StatArc& arc,
                 const char* edge, const StatLut& stat,
                 const liberty::Lut& nominal) const {
    if (stat.slewAxis() == nominal.slewAxis() &&
        stat.loadAxis() == nominal.loadAxis()) {
      return;
    }
    emit(report, arcPath(cell, arc, edge),
         "statistical grid axes differ from the nominal library table");
  }
};

}  // namespace

void registerStatLibRules(LintEngine& engine) {
  engine.add(std::make_unique<SigmaValidRule>());
  engine.add(std::make_unique<MeanValidRule>());
  engine.add(std::make_unique<SigmaExceedsMeanRule>());
  engine.add(std::make_unique<SampleCountRule>());
  engine.add(std::make_unique<GridMismatchRule>());
}

}  // namespace sct::lint
