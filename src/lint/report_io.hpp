#pragma once
// Lint report renderers: a human-readable text listing, a stable JSON form
// for scripting, and SARIF 2.1.0 so CI systems can annotate pull requests
// from `sctune lint --sarif` output (DESIGN.md §11 documents the mapping).
// All three are deterministic for a given report.

#include <iosfwd>
#include <string>

#include "lint/diagnostic.hpp"
#include "lint/engine.hpp"

namespace sct::lint {

/// "severity: [rule] path: message" lines followed by a summary line.
void writeText(std::ostream& out, const LintReport& report);
[[nodiscard]] std::string writeTextToString(const LintReport& report);

/// {"version":1, "summary":{...}, "diagnostics":[...]}.
void writeJson(std::ostream& out, const LintReport& report);
[[nodiscard]] std::string writeJsonToString(const LintReport& report);

/// SARIF 2.1.0 with one run; rule metadata (shortDescription) is taken from
/// `engine` when provided so viewers can show rule help inline.
void writeSarif(std::ostream& out, const LintReport& report,
                const LintEngine* engine = nullptr);
[[nodiscard]] std::string writeSarifToString(const LintReport& report,
                                             const LintEngine* engine = nullptr);

}  // namespace sct::lint
