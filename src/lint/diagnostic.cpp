#include "lint/diagnostic.hpp"

namespace sct::lint {

std::string_view toString(Severity severity) noexcept {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "?";
}

std::string_view sarifLevel(Severity severity) noexcept {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "note";
  }
  return "none";
}

void LintReport::add(Diagnostic diagnostic) {
  switch (diagnostic.severity) {
    case Severity::kError: ++errors_; break;
    case Severity::kWarning: ++warnings_; break;
    case Severity::kInfo: ++infos_; break;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void LintReport::merge(const LintReport& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
  errors_ += other.errors_;
  warnings_ += other.warnings_;
  infos_ += other.infos_;
}

bool LintReport::hasRule(std::string_view ruleId) const noexcept {
  for (const Diagnostic& d : diagnostics_) {
    if (d.ruleId == ruleId) return true;
  }
  return false;
}

std::string LintReport::summary() const {
  auto plural = [](std::size_t n, const char* stem) {
    return std::to_string(n) + " " + stem + (n == 1 ? "" : "s");
  };
  std::string out = plural(errors_, "error");
  out += ", " + plural(warnings_, "warning");
  if (infos_ != 0) out += ", " + plural(infos_, "info");
  return out;
}

}  // namespace sct::lint
