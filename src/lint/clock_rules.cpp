// Clock rule pack: sanity of post-silicon tuning-element configuration
// (cst.clock.*) against the clock tree it decorates. An inverted range or a
// non-positive step silently disables tuning; a step coarser than the range
// leaves a single usable setting; and a range narrower than the tree's own
// skew sigma cannot re-center the slack it is meant to absorb.

#include <cmath>
#include <string>

#include "lint/engine.hpp"

namespace sct::lint {
namespace {

using clocktree::TuningElementSpec;

constexpr const char* kSpecPath = "clock/tuning-element";

std::string num(double v) { return std::to_string(v); }

class ClockRangeInvertedRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "cst.clock.range-inverted";
  }
  RulePack pack() const noexcept override { return RulePack::kClock; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "tuning-element delay range must not be inverted or non-finite";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const TuningElementSpec& spec = *subject.clockTuning;
    if (!std::isfinite(spec.rangeMin) || !std::isfinite(spec.rangeMax)) {
      emit(report, kSpecPath, "range bounds must be finite");
      return;
    }
    if (spec.rangeMin > spec.rangeMax) {
      emit(report, kSpecPath,
           "range is inverted (" + num(spec.rangeMin) + " > " +
               num(spec.rangeMax) + ")");
    }
    if (spec.rangeMin < 0.0) {
      emit(report, kSpecPath,
           "negative delays are not realizable (rangeMin " +
               num(spec.rangeMin) + ")");
    }
  }
};

class ClockStepRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "cst.clock.step-nonpositive";
  }
  RulePack pack() const noexcept override { return RulePack::kClock; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "tuning resolution must be a positive finite step";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const TuningElementSpec& spec = *subject.clockTuning;
    if (!std::isfinite(spec.step) || spec.step <= 0.0) {
      emit(report, kSpecPath,
           "step " + num(spec.step) + " leaves no programmable settings");
    }
  }
};

class ClockStepCoarseRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "cst.clock.step-coarse";
  }
  RulePack pack() const noexcept override { return RulePack::kClock; }
  Severity severity() const noexcept override { return Severity::kWarning; }
  std::string_view description() const noexcept override {
    return "tuning step coarser than the range span leaves one setting";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const TuningElementSpec& spec = *subject.clockTuning;
    if (spec.step <= 0.0 || spec.rangeMax < spec.rangeMin) return;  // errors
    if (spec.step > spec.rangeMax - spec.rangeMin) {
      emit(report, kSpecPath,
           "step " + num(spec.step) + " exceeds the range span " +
               num(spec.rangeMax - spec.rangeMin) +
               "; only rangeMin is programmable");
    }
  }
};

class ClockRangeBelowSkewRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "cst.clock.range-below-skew";
  }
  RulePack pack() const noexcept override { return RulePack::kClock; }
  Severity severity() const noexcept override { return Severity::kWarning; }
  std::string_view description() const noexcept override {
    return "tuning range narrower than the clock tree's worst skew sigma";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    if (subject.clockTree == nullptr) return;  // no tree context: skip
    const TuningElementSpec& spec = *subject.clockTuning;
    if (spec.rangeMax < spec.rangeMin) return;  // reported as error already
    const double span = spec.rangeMax - spec.rangeMin;
    const double skew = subject.clockTree->worstSkewSigma();
    if (span < skew) {
      emit(report, kSpecPath,
           "range span " + num(span) + " ns is below the tree's worst skew "
           "sigma " + num(skew) + " ns; tuning cannot absorb its own clock "
           "network variation");
    }
  }
};

}  // namespace

void registerClockRules(LintEngine& engine) {
  engine.add(std::make_unique<ClockRangeInvertedRule>());
  engine.add(std::make_unique<ClockStepRule>());
  engine.add(std::make_unique<ClockStepCoarseRule>());
  engine.add(std::make_unique<ClockRangeBelowSkewRule>());
}

}  // namespace sct::lint
