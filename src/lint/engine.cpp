#include "lint/engine.hpp"

namespace sct::lint {

std::string_view toString(RulePack pack) noexcept {
  switch (pack) {
    case RulePack::kLiberty: return "liberty";
    case RulePack::kStatLib: return "statlib";
    case RulePack::kNetlist: return "netlist";
    case RulePack::kConstraints: return "constraints";
    case RulePack::kClock: return "clock";
    case RulePack::kEvo: return "evo";
  }
  return "?";
}

void LintEngine::add(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

LintEngine LintEngine::withAllRules() {
  LintEngine engine;
  registerLibertyRules(engine);
  registerStatLibRules(engine);
  registerNetlistRules(engine);
  registerConstraintsRules(engine);
  registerClockRules(engine);
  registerEvoRules(engine);
  return engine;
}

LintReport LintEngine::run(const LintSubject& subject,
                           RulePackMask packs) const {
  LintReport report;
  for (const std::unique_ptr<Rule>& rule : rules_) {
    if ((packs & packBit(rule->pack())) == 0) continue;
    if (!subject.carries(rule->pack())) continue;
    rule->run(subject, report);
  }
  return report;
}

}  // namespace sct::lint
