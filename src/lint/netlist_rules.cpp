// Netlist rule pack: structural invariants of subject graphs and mapped
// designs. The conventions being enforced are the ones netlist.hpp states
// (acyclic combinational logic, exactly one driver per net, no floating
// inputs) — violations crash or silently corrupt levelization and timing
// propagation far from the root cause.

#include <string>
#include <unordered_set>
#include <vector>

#include "lint/engine.hpp"

namespace sct::lint {
namespace {

using netlist::Design;
using netlist::InstIndex;
using netlist::Instance;
using netlist::kNoInst;
using netlist::NetIndex;

std::string inputPath(const Design& design, InstIndex instance,
                      std::uint32_t slot) {
  return "design/" + design.instance(instance).name + "/in" +
         std::to_string(slot);
}

/// Nets bound to input ports (externally driven; no instance driver needed).
std::unordered_set<NetIndex> inputPortNets(const Design& design) {
  std::unordered_set<NetIndex> nets;
  for (const netlist::Port& port : design.ports()) {
    if (port.direction == netlist::PortDirection::kInput) {
      nets.insert(port.net);
    }
  }
  return nets;
}

class CombLoopRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "net.comb-loop"; }
  RulePack pack() const noexcept override { return RulePack::kNetlist; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "combinational logic must be acyclic";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const Design& design = *subject.design;
    // Kahn's algorithm with the same edge semantics as the STA levelization:
    // sequential and zero-input instances are sources; every alive driver of
    // an input net gates a combinational instance.
    std::vector<std::uint32_t> indegree(design.instanceCount(), 0);
    std::vector<InstIndex> queue;
    std::size_t combCount = 0;
    for (std::size_t i = 0; i < design.instanceCount(); ++i) {
      const Instance& inst = design.instance(static_cast<InstIndex>(i));
      if (!inst.alive) continue;
      const bool isSource = netlist::isSequential(inst.op) ||
                            netlist::numInputs(inst.op) == 0;
      if (isSource) {
        queue.push_back(static_cast<InstIndex>(i));
        continue;
      }
      ++combCount;
      std::uint32_t deg = 0;
      for (NetIndex in : inst.inputs) {
        const netlist::Net& net = design.net(in);
        if (net.driver != kNoInst && design.instance(net.driver).alive) ++deg;
      }
      indegree[i] = deg;
      if (deg == 0) queue.push_back(static_cast<InstIndex>(i));
    }

    std::size_t combProcessed = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Instance& inst = design.instance(queue[head]);
      if (!netlist::isSequential(inst.op) && netlist::numInputs(inst.op) != 0) {
        ++combProcessed;
      }
      for (NetIndex out : inst.outputs) {
        for (const netlist::SinkRef& sink : design.net(out).sinks) {
          const Instance& target = design.instance(sink.instance);
          if (!target.alive || netlist::isSequential(target.op) ||
              netlist::numInputs(target.op) == 0) {
            continue;
          }
          if (--indegree[sink.instance] == 0) queue.push_back(sink.instance);
        }
      }
    }
    if (combProcessed == combCount) return;

    // Everything left with a positive indegree sits on (or behind) a cycle.
    std::string members;
    std::size_t stuck = 0;
    for (std::size_t i = 0; i < design.instanceCount(); ++i) {
      if (indegree[i] == 0) continue;
      ++stuck;
      if (stuck <= 4) {
        if (!members.empty()) members += ", ";
        members += design.instance(static_cast<InstIndex>(i)).name;
      }
    }
    emit(report, "design/" + design.name(),
         "combinational loop: " + std::to_string(stuck) +
             " instance(s) unreachable by topological ordering (" + members +
             (stuck > 4 ? ", ..." : "") + ")");
  }
};

class MultiDriverRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "net.multi-driver"; }
  RulePack pack() const noexcept override { return RulePack::kNetlist; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "every net must have exactly one driver";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const Design& design = *subject.design;
    const std::unordered_set<NetIndex> inputNets = inputPortNets(design);
    // Count drivers per net from the instance side: the Net::driver field
    // can only record one of them, so a duplicate claim is exactly the
    // corruption this rule exists to surface.
    std::vector<std::uint32_t> claims(design.netCount(), 0);
    for (std::size_t i = 0; i < design.instanceCount(); ++i) {
      const Instance& inst = design.instance(static_cast<InstIndex>(i));
      if (!inst.alive) continue;
      for (NetIndex out : inst.outputs) {
        if (out < claims.size()) ++claims[out];
      }
    }
    for (NetIndex n = 0; n < design.netCount(); ++n) {
      const std::string path = "design/net/" + design.net(n).name;
      if (claims[n] > 1) {
        emit(report, path,
             "net is driven by " + std::to_string(claims[n]) + " instances");
      } else if (claims[n] == 1 && inputNets.contains(n)) {
        emit(report, path,
             "net is driven by both a primary input and an instance output");
      }
    }
  }
};

class FloatingInputRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "net.floating-input"; }
  RulePack pack() const noexcept override { return RulePack::kNetlist; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "instance inputs must be driven by an instance or a primary input";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const Design& design = *subject.design;
    const std::unordered_set<NetIndex> inputNets = inputPortNets(design);
    for (std::size_t i = 0; i < design.instanceCount(); ++i) {
      const Instance& inst = design.instance(static_cast<InstIndex>(i));
      if (!inst.alive) continue;
      for (std::uint32_t slot = 0; slot < inst.inputs.size(); ++slot) {
        const netlist::Net& net = design.net(inst.inputs[slot]);
        const bool driven =
            (net.driver != kNoInst && design.instance(net.driver).alive) ||
            inputNets.contains(inst.inputs[slot]);
        if (driven) continue;
        emit(report, inputPath(design, static_cast<InstIndex>(i), slot),
             "input is connected to undriven net '" + net.name + "'");
      }
    }
  }
};

class DanglingOutputRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "net.dangling-output";
  }
  RulePack pack() const noexcept override { return RulePack::kNetlist; }
  Severity severity() const noexcept override { return Severity::kWarning; }
  std::string_view description() const noexcept override {
    return "cell outputs should reach a sink or a primary output";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    const Design& design = *subject.design;
    for (std::size_t i = 0; i < design.instanceCount(); ++i) {
      const Instance& inst = design.instance(static_cast<InstIndex>(i));
      if (!inst.alive) continue;
      for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
        const netlist::Net& net = design.net(inst.outputs[slot]);
        if (!net.sinks.empty() || net.isPrimaryOutput) continue;
        emit(report, "design/" + inst.name + "/out" + std::to_string(slot),
             "output net '" + net.name + "' has no sinks (dead logic)");
      }
    }
  }
};

class UnknownCellRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "net.unknown-cell"; }
  RulePack pack() const noexcept override { return RulePack::kNetlist; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "bound cells must exist in the reference library";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    // Cross-check; technology-independent designs and runs without a
    // reference library are skipped.
    const liberty::Library* library = subject.referenceLibrary;
    if (library == nullptr) return;
    const Design& design = *subject.design;
    for (std::size_t i = 0; i < design.instanceCount(); ++i) {
      const Instance& inst = design.instance(static_cast<InstIndex>(i));
      if (!inst.alive || inst.cell == nullptr) continue;
      if (library->findCell(inst.cell->name()) != nullptr) continue;
      emit(report, "design/" + inst.name,
           "bound cell '" + inst.cell->name() +
               "' does not exist in library '" + library->name() + "'");
    }
  }
};

}  // namespace

void registerNetlistRules(LintEngine& engine) {
  engine.add(std::make_unique<CombLoopRule>());
  engine.add(std::make_unique<MultiDriverRule>());
  engine.add(std::make_unique<FloatingInputRule>());
  engine.add(std::make_unique<DanglingOutputRule>());
  engine.add(std::make_unique<UnknownCellRule>());
}

}  // namespace sct::lint
