#include "lint/report_io.hpp"

#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>

namespace sct::lint {

namespace {

/// Minimal JSON string escaping (control characters, quote, backslash).
std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void writeText(std::ostream& out, const LintReport& report) {
  for (const Diagnostic& d : report.diagnostics()) {
    out << toString(d.severity) << ": [" << d.ruleId << "] " << d.objectPath
        << ": " << d.message << "\n";
  }
  out << "lint: " << report.summary() << "\n";
}

std::string writeTextToString(const LintReport& report) {
  std::ostringstream out;
  writeText(out, report);
  return out.str();
}

void writeJson(std::ostream& out, const LintReport& report) {
  out << "{\n  \"version\": 1,\n  \"summary\": {\"errors\": "
      << report.errorCount() << ", \"warnings\": " << report.warningCount()
      << ", \"infos\": " << report.infoCount() << "},\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"rule\": \"" << jsonEscape(d.ruleId) << "\", \"severity\": \""
        << toString(d.severity) << "\", \"path\": \""
        << jsonEscape(d.objectPath) << "\", \"message\": \""
        << jsonEscape(d.message) << "\"}";
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
}

std::string writeJsonToString(const LintReport& report) {
  std::ostringstream out;
  writeJson(out, report);
  return out.str();
}

void writeSarif(std::ostream& out, const LintReport& report,
                const LintEngine* engine) {
  out << "{\n"
         "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"sctune-lint\",\n"
         "          \"informationUri\": "
         "\"https://example.invalid/sctune\",\n"
         "          \"rules\": [";
  // Only rules that fired (or all registered rules when an engine is given)
  // appear in the driver metadata; emission order is deterministic.
  bool firstRule = true;
  auto emitRule = [&](std::string_view id, std::string_view description) {
    out << (firstRule ? "\n" : ",\n");
    firstRule = false;
    out << "            {\"id\": \"" << jsonEscape(id) << "\"";
    if (!description.empty()) {
      out << ", \"shortDescription\": {\"text\": \"" << jsonEscape(description)
          << "\"}";
    }
    out << "}";
  };
  if (engine != nullptr) {
    for (const auto& rule : engine->rules()) {
      emitRule(rule->id(), rule->description());
    }
  } else {
    std::set<std::string> seen;
    for (const Diagnostic& d : report.diagnostics()) {
      if (seen.insert(d.ruleId).second) emitRule(d.ruleId, {});
    }
  }
  out << (firstRule ? "]" : "\n          ]")
      << "\n"
         "        }\n"
         "      },\n"
         "      \"results\": [";
  bool firstResult = true;
  for (const Diagnostic& d : report.diagnostics()) {
    out << (firstResult ? "\n" : ",\n");
    firstResult = false;
    out << "        {\"ruleId\": \"" << jsonEscape(d.ruleId)
        << "\", \"level\": \"" << sarifLevel(d.severity)
        << "\", \"message\": {\"text\": \"" << jsonEscape(d.message)
        << "\"}, \"locations\": [{\"logicalLocations\": "
           "[{\"fullyQualifiedName\": \""
        << jsonEscape(d.objectPath) << "\"}]}]}";
  }
  out << (firstResult ? "]" : "\n      ]")
      << "\n"
         "    }\n"
         "  ]\n"
         "}\n";
}

std::string writeSarifToString(const LintReport& report,
                               const LintEngine* engine) {
  std::ostringstream out;
  writeSarif(out, report, engine);
  return out.str();
}

}  // namespace sct::lint
