// Liberty rule pack: structural sanity of characterized libraries. These
// catch the input corruptions that otherwise surface deep inside the flow —
// eqs. (12)-(13) divide by axis deltas (unordered/duplicate breakpoints),
// interpolation assumes finite non-negative entries, and the mapper assumes
// every declared output pin has timing arcs of one consistent shape.

#include <array>
#include <cmath>
#include <string>

#include "lint/engine.hpp"

namespace sct::lint {
namespace {

using liberty::Cell;
using liberty::Lut;
using liberty::TimingArc;

/// The four tables of an arc with their Liberty group names.
struct NamedLut {
  const Lut* lut;
  const char* name;
};

std::array<NamedLut, 4> arcTables(const TimingArc& arc) {
  return {{{&arc.riseDelay, "cell_rise"},
           {&arc.fallDelay, "cell_fall"},
           {&arc.riseTransition, "rise_transition"},
           {&arc.fallTransition, "fall_transition"}}};
}

std::string tablePath(const Cell& cell, const TimingArc& arc,
                      const char* table) {
  return "lib/" + cell.name() + "/" + arc.outputPin + "/" + table;
}

/// First index where the axis is not strictly increasing; npos when ordered.
std::size_t firstDisorder(const numeric::Axis& axis) noexcept {
  for (std::size_t i = 0; i + 1 < axis.size(); ++i) {
    if (!(axis[i] < axis[i + 1])) return i + 1;
  }
  return std::string::npos;
}

class AxisOrderRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "lib.axis.order"; }
  RulePack pack() const noexcept override { return RulePack::kLiberty; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "LUT axis breakpoints must be strictly increasing (no duplicates)";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const Cell* cell : subject.library->cells()) {
      for (const TimingArc& arc : cell->arcs()) {
        for (const NamedLut& table : arcTables(arc)) {
          checkAxis(report, *cell, arc, table.name, "index_1 (slew)",
                    table.lut->slewAxis());
          checkAxis(report, *cell, arc, table.name, "index_2 (load)",
                    table.lut->loadAxis());
        }
      }
    }
  }

 private:
  void checkAxis(LintReport& report, const Cell& cell, const TimingArc& arc,
                 const char* table, const char* axisName,
                 const numeric::Axis& axis) const {
    if (axis.size() < 2) {
      emit(report, tablePath(cell, arc, table),
           std::string(axisName) + " has " + std::to_string(axis.size()) +
               " breakpoints (need at least 2)");
      return;
    }
    const std::size_t bad = firstDisorder(axis);
    if (bad == std::string::npos) return;
    const bool duplicate = axis[bad] == axis[bad - 1];
    emit(report, tablePath(cell, arc, table),
         std::string(axisName) + (duplicate ? " has duplicate breakpoint "
                                            : " is not increasing at index ") +
             std::to_string(bad) + " (value " + std::to_string(axis[bad]) +
             ")");
  }
};

class ValueValidRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "lib.value.invalid"; }
  RulePack pack() const noexcept override { return RulePack::kLiberty; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "delay/transition LUT entries must be finite and non-negative";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const Cell* cell : subject.library->cells()) {
      for (const TimingArc& arc : cell->arcs()) {
        for (const NamedLut& table : arcTables(arc)) {
          checkGrid(report, tablePath(*cell, arc, table.name), *table.lut);
        }
      }
      if (!cell->setupLut().empty()) {
        // Setup requirements may legitimately be negative; only reject
        // non-finite entries.
        for (double v : cell->setupLut().values().flat()) {
          if (!std::isfinite(v)) {
            emit(report, "lib/" + cell->name() + "/setup",
                 "setup LUT contains a non-finite entry");
            break;
          }
        }
      }
    }
  }

 private:
  void checkGrid(LintReport& report, std::string path, const Lut& lut) const {
    for (std::size_t r = 0; r < lut.rows(); ++r) {
      for (std::size_t c = 0; c < lut.cols(); ++c) {
        const double v = lut.at(r, c);
        if (std::isfinite(v) && v >= 0.0) continue;
        emit(report, std::move(path),
             std::string(std::isfinite(v) ? "negative" : "non-finite") +
                 " entry " + std::to_string(v) + " at [" + std::to_string(r) +
                 "," + std::to_string(c) + "]");
        return;  // one diagnostic per table keeps corrupt files readable
      }
    }
  }
};

class MonotoneLoadRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "lib.lut.monotone-load";
  }
  RulePack pack() const noexcept override { return RulePack::kLiberty; }
  Severity severity() const noexcept override { return Severity::kWarning; }
  std::string_view description() const noexcept override {
    return "delay LUT rows should be non-decreasing along the load axis";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const Cell* cell : subject.library->cells()) {
      for (const TimingArc& arc : cell->arcs()) {
        checkDelay(report, tablePath(*cell, arc, "cell_rise"), arc.riseDelay);
        checkDelay(report, tablePath(*cell, arc, "cell_fall"), arc.fallDelay);
      }
    }
  }

 private:
  void checkDelay(LintReport& report, std::string path, const Lut& lut) const {
    // Tolerate bit-level noise; physical delay grows with load.
    constexpr double kTolerance = 1e-12;
    for (std::size_t r = 0; r < lut.rows(); ++r) {
      for (std::size_t c = 0; c + 1 < lut.cols(); ++c) {
        const double here = lut.at(r, c);
        const double next = lut.at(r, c + 1);
        if (!std::isfinite(here) || !std::isfinite(next)) continue;
        if (next + kTolerance >= here) continue;
        emit(report, std::move(path),
             "delay decreases with load in row " + std::to_string(r) +
                 " between columns " + std::to_string(c) + " and " +
                 std::to_string(c + 1) + " (" + std::to_string(here) +
                 " -> " + std::to_string(next) + ")");
        return;
      }
    }
  }
};

class MissingArcRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "lib.pin.missing-arc";
  }
  RulePack pack() const noexcept override { return RulePack::kLiberty; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "declared pins and timing arcs must reference each other";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const Cell* cell : subject.library->cells()) {
      // Tie cells (no inputs) legitimately have arc-less outputs.
      if (cell->inputPins().empty()) continue;
      for (const liberty::Pin* pin : cell->outputPins()) {
        if (cell->fanoutArcs(pin->name).empty()) {
          emit(report, "lib/" + cell->name() + "/" + pin->name,
               "declared output pin has no timing arc");
        }
      }
      for (const TimingArc& arc : cell->arcs()) {
        checkPinRef(report, *cell, arc, arc.relatedPin,
                    liberty::PinDirection::kInput, "related_pin");
        checkPinRef(report, *cell, arc, arc.outputPin,
                    liberty::PinDirection::kOutput, "output pin");
      }
    }
  }

 private:
  void checkPinRef(LintReport& report, const Cell& cell, const TimingArc& arc,
                   const std::string& pinName, liberty::PinDirection direction,
                   const char* role) const {
    const liberty::Pin* pin = cell.findPin(pinName);
    if (pin == nullptr) {
      emit(report, "lib/" + cell.name() + "/" + arc.outputPin,
           "timing arc references undeclared " + std::string(role) + " '" +
               pinName + "'");
    } else if (pin->direction != direction) {
      emit(report, "lib/" + cell.name() + "/" + arc.outputPin,
           "timing arc " + std::string(role) + " '" + pinName +
               "' has the wrong direction");
    }
  }
};

class LutShapeRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "lib.lut.shape"; }
  RulePack pack() const noexcept override { return RulePack::kLiberty; }
  Severity severity() const noexcept override { return Severity::kError; }
  std::string_view description() const noexcept override {
    return "all LUTs of a cell must share one table shape";
  }

  void run(const LintSubject& subject, LintReport& report) const override {
    for (const Cell* cell : subject.library->cells()) {
      const Lut* reference = nullptr;
      const char* referenceName = nullptr;
      for (const TimingArc& arc : cell->arcs()) {
        for (const NamedLut& table : arcTables(arc)) {
          if (table.lut->empty()) {
            emit(report, tablePath(*cell, arc, table.name), "LUT is empty");
            continue;
          }
          if (reference == nullptr) {
            reference = table.lut;
            referenceName = table.name;
            continue;
          }
          // Delay and transition tables of one cell are characterized over
          // one template; dimension skew means a merge/slice bug upstream.
          if (table.lut->rows() != reference->rows() ||
              table.lut->cols() != reference->cols()) {
            emit(report, tablePath(*cell, arc, table.name),
                 "LUT is " + std::to_string(table.lut->rows()) + "x" +
                     std::to_string(table.lut->cols()) + " but " +
                     referenceName + " is " +
                     std::to_string(reference->rows()) + "x" +
                     std::to_string(reference->cols()));
          } else if (!table.lut->sameShape(*reference)) {
            emit(report, tablePath(*cell, arc, table.name),
                 "LUT axes differ from the cell's reference table");
          }
        }
      }
    }
  }
};

}  // namespace

void registerLibertyRules(LintEngine& engine) {
  engine.add(std::make_unique<AxisOrderRule>());
  engine.add(std::make_unique<ValueValidRule>());
  engine.add(std::make_unique<MonotoneLoadRule>());
  engine.add(std::make_unique<MissingArcRule>());
  engine.add(std::make_unique<LutShapeRule>());
}

}  // namespace sct::lint
