#include "clocktree/clock_tree.hpp"

#include <cmath>

namespace sct::clocktree {
namespace {

using liberty::Cell;
using liberty::CellFunction;

/// Buffer candidates: CLKBUF family first (dedicated clock cells), BUF as a
/// fallback; only cells the constraints leave usable.
std::vector<const Cell*> bufferCandidates(
    const liberty::Library& library,
    const tuning::LibraryConstraints* constraints) {
  std::vector<const Cell*> out;
  for (CellFunction f : {CellFunction::kClkBuf, CellFunction::kBuf}) {
    for (const Cell* cell : library.family(f)) {
      if (constraints == nullptr || constraints->cellUsable(cell->name())) {
        out.push_back(cell);
      }
    }
  }
  return out;
}

/// Smallest candidate that can legally drive `load` at `inputSlew`.
const Cell* pickBuffer(const std::vector<const Cell*>& candidates,
                       const tuning::LibraryConstraints* constraints,
                       double inputSlew, double load) {
  for (const Cell* cell : candidates) {
    const liberty::Pin* out = cell->findPin("Z");
    if (out == nullptr || (out->maxCapacitance > 0.0 &&
                           load > out->maxCapacitance)) {
      continue;
    }
    if (constraints != nullptr &&
        !constraints->allows(cell->name(), "Z", inputSlew, load)) {
      continue;
    }
    return cell;
  }
  return nullptr;
}

}  // namespace

std::size_t ClockTree::bufferCount() const noexcept {
  std::size_t n = 0;
  for (const TreeLevel& level : levels) n += level.bufferCount;
  return n;
}

double ClockTree::bufferArea() const noexcept {
  double area = 0.0;
  for (const TreeLevel& level : levels) {
    if (level.buffer != nullptr) {
      area += level.buffer->area() * static_cast<double>(level.bufferCount);
    }
  }
  return area;
}

double ClockTree::insertionDelay() const noexcept {
  double delay = 0.0;
  for (const TreeLevel& level : levels) delay += level.delayMean;
  return delay;
}

double ClockTree::insertionSigma() const noexcept {
  double var = 0.0;
  for (const TreeLevel& level : levels) {
    var += level.delaySigma * level.delaySigma;
  }
  return std::sqrt(var);
}

double ClockTree::siblingSkewSigma() const noexcept {
  if (levels.empty()) return 0.0;
  // Only the two distinct leaf buffers differ; everything above is shared.
  const double leaf = levels.front().delaySigma;
  return std::sqrt(2.0) * leaf;
}

double ClockTree::worstSkewSigma() const noexcept {
  // Fully disjoint chains (except the root driver itself when there is only
  // one buffer at the top level — exclude single-buffer levels, which are
  // shared by every sink).
  double var = 0.0;
  for (const TreeLevel& level : levels) {
    if (level.bufferCount <= 1) continue;
    var += 2.0 * level.delaySigma * level.delaySigma;
  }
  return std::sqrt(var);
}

std::optional<ClockTree> buildClockTree(
    const netlist::Design& design, const liberty::Library& library,
    const statlib::StatLibrary& statLibrary,
    const tuning::LibraryConstraints* constraints,
    const ClockTreeConfig& config) {
  // Collect clock-pin loads of all sequential instances.
  std::vector<double> sinkCaps;
  for (const netlist::Instance& inst : design.instances()) {
    if (!inst.alive || inst.cell == nullptr ||
        !netlist::isSequential(inst.op)) {
      continue;
    }
    const liberty::Pin* cp = inst.cell->findPin("CP");
    if (cp != nullptr) sinkCaps.push_back(cp->capacitance);
  }
  if (sinkCaps.empty()) return std::nullopt;

  const std::vector<const Cell*> candidates =
      bufferCandidates(library, constraints);
  if (candidates.empty()) return std::nullopt;

  ClockTree tree;
  tree.sinkCount = sinkCaps.size();

  // Bottom-up clustering. Levels are built sink-side first; slews can only
  // be computed top-down, so structure first, then annotate.
  std::vector<double> currentLoads = std::move(sinkCaps);
  while (true) {
    // Adapt the group size downward until a buffer can drive the group.
    std::size_t fanout = config.maxFanout;
    const Cell* chosen = nullptr;
    double groupLoad = 0.0;
    while (fanout >= 2) {
      // Worst group load: the `fanout` largest sinks is pessimistic; use
      // average load x fanout + wire, which matches balanced clustering.
      double avg = 0.0;
      for (double c : currentLoads) avg += c;
      avg /= static_cast<double>(currentLoads.size());
      groupLoad = avg * static_cast<double>(
                            std::min(fanout, currentLoads.size())) +
                  config.wireCapPerSink *
                      static_cast<double>(std::min(fanout, currentLoads.size()));
      // Slew is unknown until the top-down pass; check at the root slew
      // (clock slews are tightly controlled, so this is representative).
      chosen = pickBuffer(candidates, constraints, config.rootSlew, groupLoad);
      if (chosen != nullptr) break;
      fanout /= 2;
    }
    if (chosen == nullptr) return std::nullopt;  // tuned away entirely

    const std::size_t buffers =
        (currentLoads.size() + fanout - 1) / fanout;
    TreeLevel level;
    level.buffer = chosen;
    level.bufferCount = buffers;
    level.loadPerBuffer = groupLoad;
    tree.levels.push_back(level);
    if (buffers == 1) break;
    currentLoads.assign(buffers, chosen->inputCapacitance("A"));
  }

  // Top-down annotation: slews and delay statistics per level.
  double slew = config.rootSlew;
  for (auto it = tree.levels.rbegin(); it != tree.levels.rend(); ++it) {
    TreeLevel& level = *it;
    level.inputSlew = slew;
    const liberty::TimingArc* arc = level.buffer->findArc("A", "Z");
    if (arc == nullptr) return std::nullopt;
    level.delayMean = arc->worstDelay(slew, level.loadPerBuffer);
    const statlib::StatCell* statCell =
        statLibrary.findCell(level.buffer->name());
    if (statCell != nullptr) {
      if (const statlib::StatArc* statArc = statCell->findArc("A", "Z")) {
        level.delaySigma =
            statArc->worstDelayStats(slew, level.loadPerBuffer).sigma;
      }
    }
    slew = arc->worstTransition(slew, level.loadPerBuffer);
  }
  return tree;
}

}  // namespace sct::clocktree
