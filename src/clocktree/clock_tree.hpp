#pragma once
// Clock-tree synthesis and variation analysis — the paper's future-work
// item (section VIII: "The effectiveness of the method on the clock tree in
// particular needs further investigation").
//
// Builds a balanced buffered clock tree over all sequential clock pins of a
// mapped design: sinks are clustered bottom-up under clock buffers until a
// single root remains. Buffer cells are picked from the CLKBUF (fallback
// BUF) family, honouring tuned per-pin slew/load windows when constraints
// are given — so the same library tuning that shapes the data path also
// shapes the clock tree. The analysis reports insertion delay, per-sink
// sigma (local mismatch accumulated along the buffer chain) and skew sigma
// between sink pairs (shared buffers cancel; only the disjoint tree
// portions contribute).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "statlib/stat_library.hpp"
#include "tuning/restriction.hpp"

namespace sct::clocktree {

struct ClockTreeConfig {
  std::size_t maxFanout = 16;   ///< sinks per buffer
  double rootSlew = 0.02;       ///< transition driven into the root [ns]
  double wireCapPerSink = 0.0015;  ///< lumped wire model [pF per sink]
};

/// One level of the balanced tree (level 0 drives the flip-flop pins).
struct TreeLevel {
  const liberty::Cell* buffer = nullptr;
  std::size_t bufferCount = 0;
  double loadPerBuffer = 0.0;   ///< pF seen by each buffer
  double inputSlew = 0.0;       ///< transition at the buffer input [ns]
  double delayMean = 0.0;       ///< per-buffer delay at this level [ns]
  double delaySigma = 0.0;      ///< per-buffer local-mismatch sigma [ns]
};

struct ClockTree {
  std::vector<TreeLevel> levels;  ///< levels.front() drives the sinks
  std::size_t sinkCount = 0;

  [[nodiscard]] std::size_t bufferCount() const noexcept;
  [[nodiscard]] double bufferArea() const noexcept;
  /// Mean source-to-sink insertion delay [ns].
  [[nodiscard]] double insertionDelay() const noexcept;
  /// Sigma of one sink's insertion delay (RSS along its buffer chain).
  [[nodiscard]] double insertionSigma() const noexcept;
  /// Skew sigma between two sinks sharing all levels above the leaves
  /// (common buffers cancel; only the two leaf buffers differ).
  [[nodiscard]] double siblingSkewSigma() const noexcept;
  /// Skew sigma between two sinks with fully disjoint buffer chains
  /// (worst pair in the tree).
  [[nodiscard]] double worstSkewSigma() const noexcept;
};

/// Builds and analyzes a clock tree for the design's sequential sinks.
/// Returns nullopt when no usable buffer cell exists (library tuned away)
/// or the design has no sequential cells.
[[nodiscard]] std::optional<ClockTree> buildClockTree(
    const netlist::Design& design, const liberty::Library& library,
    const statlib::StatLibrary& statLibrary,
    const tuning::LibraryConstraints* constraints = nullptr,
    const ClockTreeConfig& config = {});

}  // namespace sct::clocktree
