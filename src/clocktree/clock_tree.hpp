#pragma once
// Clock-tree synthesis and variation analysis — the paper's future-work
// item (section VIII: "The effectiveness of the method on the clock tree in
// particular needs further investigation").
//
// Builds a balanced buffered clock tree over all sequential clock pins of a
// mapped design: sinks are clustered bottom-up under clock buffers until a
// single root remains. Buffer cells are picked from the CLKBUF (fallback
// BUF) family, honouring tuned per-pin slew/load windows when constraints
// are given — so the same library tuning that shapes the data path also
// shapes the clock tree. The analysis reports insertion delay, per-sink
// sigma (local mismatch accumulated along the buffer chain) and skew sigma
// between sink pairs (shared buffers cancel; only the disjoint tree
// portions contribute).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "statlib/stat_library.hpp"
#include "tuning/restriction.hpp"

namespace sct::clocktree {

struct ClockTreeConfig {
  std::size_t maxFanout = 16;   ///< sinks per buffer
  double rootSlew = 0.02;       ///< transition driven into the root [ns]
  double wireCapPerSink = 0.0015;  ///< lumped wire model [pF per sink]
};

/// Post-silicon tunable delay element attached to a sink buffer (Li &
/// Schlichtmann-style clock tuning): a discrete programmable delay in
/// [rangeMin, rangeMax], settable in multiples of `step` after
/// manufacturing. Per-die assignments are chosen from measured slack, so
/// the statistical tuning-range computation (src/postsi) works on the MC
/// slack distribution of each register endpoint.
struct TuningElementSpec {
  double rangeMin = 0.0;       ///< smallest programmable delay [ns]
  double rangeMax = 0.0;       ///< largest programmable delay [ns]
  double step = 0.0;           ///< tuning resolution [ns]
  double areaPerElement = 2.0; ///< silicon cost of one element [um^2]

  /// True when the range is non-inverted and the step positive and no
  /// coarser than the range span (a zero-span range is only valid with a
  /// zero count of usable settings, i.e. effectively no tuning).
  [[nodiscard]] bool valid() const noexcept {
    return rangeMax >= rangeMin && step > 0.0 && step <= (rangeMax - rangeMin);
  }
  [[nodiscard]] bool enabled() const noexcept { return rangeMax > rangeMin; }
  /// Tolerance (in step units) absorbing division wobble when a bound sits
  /// on the grid: (0.3 - 0.0) / 0.05 evaluates to 5.999...97, which would
  /// otherwise truncate away the top setting.
  static constexpr double kGridSlop = 1e-9;
  /// Number of programmable settings on the step grid (including rangeMin).
  [[nodiscard]] std::size_t settingCount() const noexcept {
    if (step <= 0.0 || rangeMax < rangeMin) return 0;
    return static_cast<std::size_t>((rangeMax - rangeMin) / step + kGridSlop) +
           1;
  }
  /// Clamps into the range and rounds down to the step grid — the delay a
  /// real element would realize for a requested value. Grid origin is
  /// rangeMin; flooring keeps the tuned register from borrowing more delay
  /// than the measurement justified.
  [[nodiscard]] double snap(double requested) const noexcept {
    if (step <= 0.0 || rangeMax <= rangeMin) return rangeMin;
    if (requested <= rangeMin) return rangeMin;
    const double span = requested >= rangeMax ? rangeMax - rangeMin
                                              : requested - rangeMin;
    const double steps = static_cast<double>(
        static_cast<long long>(span / step + kGridSlop));
    return rangeMin + steps * step;
  }
};

/// One level of the balanced tree (level 0 drives the flip-flop pins).
struct TreeLevel {
  const liberty::Cell* buffer = nullptr;
  std::size_t bufferCount = 0;
  double loadPerBuffer = 0.0;   ///< pF seen by each buffer
  double inputSlew = 0.0;       ///< transition at the buffer input [ns]
  double delayMean = 0.0;       ///< per-buffer delay at this level [ns]
  double delaySigma = 0.0;      ///< per-buffer local-mismatch sigma [ns]
};

struct ClockTree {
  std::vector<TreeLevel> levels;  ///< levels.front() drives the sinks
  std::size_t sinkCount = 0;

  [[nodiscard]] std::size_t bufferCount() const noexcept;
  [[nodiscard]] double bufferArea() const noexcept;
  /// Mean source-to-sink insertion delay [ns].
  [[nodiscard]] double insertionDelay() const noexcept;
  /// Sigma of one sink's insertion delay (RSS along its buffer chain).
  [[nodiscard]] double insertionSigma() const noexcept;
  /// Skew sigma between two sinks sharing all levels above the leaves
  /// (common buffers cancel; only the two leaf buffers differ).
  [[nodiscard]] double siblingSkewSigma() const noexcept;
  /// Skew sigma between two sinks with fully disjoint buffer chains
  /// (worst pair in the tree).
  [[nodiscard]] double worstSkewSigma() const noexcept;
};

/// Builds and analyzes a clock tree for the design's sequential sinks.
/// Returns nullopt when no usable buffer cell exists (library tuned away)
/// or the design has no sequential cells.
[[nodiscard]] std::optional<ClockTree> buildClockTree(
    const netlist::Design& design, const liberty::Library& library,
    const statlib::StatLibrary& statLibrary,
    const tuning::LibraryConstraints* constraints = nullptr,
    const ClockTreeConfig& config = {});

}  // namespace sct::clocktree
