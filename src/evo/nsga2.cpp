#include "evo/nsga2.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace sct::evo {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool dominates(const std::vector<double>& a, const std::vector<double>& b,
               const std::vector<std::size_t>& objective_idx) {
  bool strict = false;
  for (const std::size_t k : objective_idx) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strict = true;
  }
  return strict;
}

std::vector<std::size_t> nondominatedRanks(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::size_t>& objective_idx) {
  const std::size_t n = points.size();
  std::vector<std::size_t> dominatedBy(n, 0);  // count of dominators
  std::vector<std::vector<std::size_t>> dominating(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dominates(points[i], points[j], objective_idx)) {
        dominating[i].push_back(j);
        ++dominatedBy[j];
      } else if (dominates(points[j], points[i], objective_idx)) {
        dominating[j].push_back(i);
        ++dominatedBy[i];
      }
    }
  }
  std::vector<std::size_t> ranks(n, 0);
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (dominatedBy[i] == 0) current.push_back(i);
  }
  std::size_t rank = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t i : current) {
      ranks[i] = rank;
      for (const std::size_t j : dominating[i]) {
        if (--dominatedBy[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
    ++rank;
  }
  return ranks;
}

std::vector<double> crowdingDistances(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::size_t>& members,
    const std::vector<std::size_t>& objective_idx) {
  std::vector<double> distance(members.size(), 0.0);
  if (members.size() <= 2) {
    std::fill(distance.begin(), distance.end(), kInf);
    return distance;
  }
  std::vector<std::size_t> order(members.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (const std::size_t k : objective_idx) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double va = points[members[a]][k];
      const double vb = points[members[b]][k];
      if (va != vb) return va < vb;
      return members[a] < members[b];
    });
    const double lo = points[members[order.front()]][k];
    const double hi = points[members[order.back()]][k];
    distance[order.front()] = kInf;
    distance[order.back()] = kInf;
    if (!(hi > lo) || !std::isfinite(hi - lo)) continue;
    for (std::size_t i = 1; i + 1 < order.size(); ++i) {
      const double prev = points[members[order[i - 1]]][k];
      const double next = points[members[order[i + 1]]][k];
      distance[order[i]] += (next - prev) / (hi - lo);
    }
  }
  return distance;
}

std::vector<std::size_t> selectSurvivors(
    const std::vector<std::vector<double>>& points, std::size_t count,
    const std::vector<std::size_t>& objective_idx) {
  const std::size_t n = points.size();
  count = std::min(count, n);
  const std::vector<std::size_t> ranks = nondominatedRanks(points, objective_idx);

  // Bucket by rank; fill whole ranks while they fit, split the last one by
  // crowding distance (desc) with an index tie-break.
  std::size_t maxRank = 0;
  for (const std::size_t r : ranks) maxRank = std::max(maxRank, r);
  std::vector<std::vector<std::size_t>> byRank(maxRank + 1);
  for (std::size_t i = 0; i < n; ++i) byRank[ranks[i]].push_back(i);

  std::vector<std::size_t> survivors;
  survivors.reserve(count);
  for (const std::vector<std::size_t>& members : byRank) {
    if (survivors.size() == count) break;
    if (survivors.size() + members.size() <= count) {
      survivors.insert(survivors.end(), members.begin(), members.end());
      continue;
    }
    const std::vector<double> crowd =
        crowdingDistances(points, members, objective_idx);
    std::vector<std::size_t> order(members.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (crowd[a] != crowd[b]) return crowd[a] > crowd[b];
      return members[a] < members[b];
    });
    for (const std::size_t i : order) {
      if (survivors.size() == count) break;
      survivors.push_back(members[i]);
    }
  }
  std::sort(survivors.begin(), survivors.end());
  return survivors;
}

std::vector<std::size_t> paretoFront(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::size_t>& objective_idx) {
  const std::vector<std::size_t> ranks = nondominatedRanks(points, objective_idx);
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (ranks[i] == 0) front.push_back(i);
  }
  return front;
}

std::vector<double> varied(const std::vector<double>& parent1,
                           const std::vector<double>& parent2,
                           const VariationConfig& config, numeric::Rng& rng) {
  assert(parent1.size() == parent2.size());
  const std::size_t n = parent1.size();
  std::vector<double> child = parent1;

  // Simulated binary crossover (Deb & Agrawal): per gene, blend the parents
  // with a spread factor drawn from the eta-parameterized distribution.
  if (rng.uniform() < config.crossoverProb) {
    for (std::size_t i = 0; i < n; ++i) {
      const double u = rng.uniform();
      const double beta =
          u <= 0.5 ? std::pow(2.0 * u, 1.0 / (config.crossoverEta + 1.0))
                   : std::pow(1.0 / (2.0 * (1.0 - u)),
                              1.0 / (config.crossoverEta + 1.0));
      child[i] = 0.5 * ((1.0 + beta) * parent1[i] + (1.0 - beta) * parent2[i]);
    }
  }

  // Polynomial mutation with per-gene probability 1/n.
  const double pm = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() >= pm) continue;
    const double u = rng.uniform();
    const double delta =
        u < 0.5 ? std::pow(2.0 * u, 1.0 / (config.mutationEta + 1.0)) - 1.0
                : 1.0 - std::pow(2.0 * (1.0 - u),
                                 1.0 / (config.mutationEta + 1.0));
    child[i] += delta * (config.geneMax - config.geneMin);
  }

  for (double& gene : child) {
    gene = std::clamp(gene, config.geneMin, config.geneMax);
  }
  return child;
}

std::size_t tournamentPick(const std::vector<std::size_t>& ranks,
                           const std::vector<double>& crowding,
                           numeric::Rng& rng) {
  assert(!ranks.empty() && ranks.size() == crowding.size());
  const std::size_t a = rng.uniformInt(ranks.size());
  const std::size_t b = rng.uniformInt(ranks.size());
  if (ranks[a] != ranks[b]) return ranks[a] < ranks[b] ? a : b;
  if (crowding[a] != crowding[b]) return crowding[a] > crowding[b] ? a : b;
  return std::min(a, b);
}

}  // namespace sct::evo
