#pragma once
// Deterministic NSGA-II machinery: weak Pareto dominance, fast nondominated
// sorting, crowding distance, environmental selection and SBX/polynomial
// variation over bounded real gene vectors. Everything here is a pure
// function of its inputs (ties broken by index or lexicographic order, RNG
// streams passed in explicitly), which is what makes the tuner bit-identical
// across thread counts and cache temperatures.

#include <cstddef>
#include <vector>

#include "numeric/rng.hpp"

namespace sct::evo {

/// True when `a` weakly dominates `b` over the selected objective indices:
/// a <= b everywhere and a < b somewhere (minimization). Infeasible points
/// carry +inf objectives and are dominated by every feasible point.
[[nodiscard]] bool dominates(const std::vector<double>& a,
                             const std::vector<double>& b,
                             const std::vector<std::size_t>& objective_idx);

/// Nondomination rank per point (0 = Pareto front), over the selected
/// objective indices. O(n^2 m); n is a population, not a design.
[[nodiscard]] std::vector<std::size_t> nondominatedRanks(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::size_t>& objective_idx);

/// Crowding distance of each member of one rank class (indices into
/// `points`); boundary points get +inf. Sorting ties break by index, so the
/// result is deterministic for any input order.
[[nodiscard]] std::vector<double> crowdingDistances(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::size_t>& members,
    const std::vector<std::size_t>& objective_idx);

/// Environmental selection: the `count` best indices by (rank asc, crowding
/// desc, index asc) — the canonical NSGA-II survivor rule with a
/// deterministic final tie-break.
[[nodiscard]] std::vector<std::size_t> selectSurvivors(
    const std::vector<std::vector<double>>& points, std::size_t count,
    const std::vector<std::size_t>& objective_idx);

/// Indices of the weakly-nondominated points (the Pareto front of `points`).
[[nodiscard]] std::vector<std::size_t> paretoFront(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::size_t>& objective_idx);

struct VariationConfig {
  double crossoverProb = 0.9;
  double crossoverEta = 15.0;  ///< SBX distribution index
  double mutationEta = 20.0;   ///< polynomial-mutation distribution index
  double geneMin = 0.0;
  double geneMax = 1.0;
};

/// One child via simulated-binary crossover of the parents followed by
/// polynomial mutation (per-gene probability 1/n), clamped to the gene
/// bounds. Consumes draws from `rng` only — the caller derives a
/// counter-based stream per (generation, index) for order independence.
[[nodiscard]] std::vector<double> varied(const std::vector<double>& parent1,
                                         const std::vector<double>& parent2,
                                         const VariationConfig& config,
                                         numeric::Rng& rng);

/// Binary-tournament pick: two uniform draws; the winner is the lower
/// (rank, -crowding, index) tuple. Returns an index into the population.
[[nodiscard]] std::size_t tournamentPick(
    const std::vector<std::size_t>& ranks,
    const std::vector<double>& crowding, numeric::Rng& rng);

}  // namespace sct::evo
