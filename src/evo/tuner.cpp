#include "evo/tuner.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "artifact/hash.hpp"
#include "core/stage_cache.hpp"
#include "evo/nsga2.hpp"
#include "numeric/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "statlib/stat_library.hpp"
#include "synth/synthesis.hpp"
#include "tuning/methods.hpp"
#include "tuning/restriction.hpp"

namespace sct::evo {
namespace {

constexpr std::uint32_t kEvolveSchema = 1;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Full-precision round-trippable double rendering; the evolve report is
/// compared byte-for-byte between CLI, daemon, thread counts and cache
/// temperatures.
std::string fmt17(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

/// CLI method-name dictionary (matches core::tuningMethodByName), used in
/// seed origins so a baseline line names the `sctune flow --method` spelling.
std::string_view cliMethodName(tuning::TuningMethod method) noexcept {
  switch (method) {
    case tuning::TuningMethod::kCellStrengthLoadSlope: return "strength-load";
    case tuning::TuningMethod::kCellStrengthSlewSlope: return "strength-slew";
    case tuning::TuningMethod::kCellLoadSlope: return "cell-load";
    case tuning::TuningMethod::kCellSlewSlope: return "cell-slew";
    case tuning::TuningMethod::kSigmaCeiling: return "sigma-ceiling";
  }
  return "?";
}

constexpr const char* kObjectiveNames[] = {"sigma", "area", "power"};

/// Enabled objective indices (into the canonical sigma/area/power order),
/// deduplicated and sorted so "power,sigma" and "sigma,power" are the same
/// search. Throws on unknown names or an empty set (mirrors the lint rule
/// for callers that skip the gate).
std::vector<std::size_t> parseObjectives(const std::string& list) {
  std::set<std::size_t> enabled;
  std::istringstream stream(list);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    bool known = false;
    for (std::size_t k = 0; k < 3; ++k) {
      if (token == kObjectiveNames[k]) {
        enabled.insert(k);
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::runtime_error("unknown objective '" + token +
                               "' (sigma/area/power)");
    }
  }
  if (enabled.empty()) {
    throw std::runtime_error("empty objective set '" + list + "'");
  }
  return {enabled.begin(), enabled.end()};
}

/// Measured fitness of one genotype — the cached candidate-stage payload.
struct CandidateFitness {
  bool feasible = false;  ///< synthesis met timing and windows
  double sigma = 0.0;     ///< worst endpoint path sigma [ns]
  double area = 0.0;
  double power = 0.0;
};

void encodeFitness(artifact::SctbWriter& writer,
                   const CandidateFitness& fitness) {
  writer.beginSection("evo-cand");
  writer.u32(kEvolveSchema);
  writer.boolean(fitness.feasible);
  writer.f64(fitness.sigma);
  writer.f64(fitness.area);
  writer.f64(fitness.power);
}

CandidateFitness decodeFitness(const artifact::SctbReader& reader) {
  artifact::SctbReader::Cursor cursor = reader.section("evo-cand");
  if (cursor.u32() != kEvolveSchema) {
    throw artifact::FormatError("evo-cand schema mismatch");
  }
  CandidateFitness fitness;
  fitness.feasible = cursor.boolean();
  fitness.sigma = cursor.f64();
  fitness.area = cursor.f64();
  fitness.power = cursor.f64();
  return fitness;
}

/// Candidate cache key: measurement context (everything influencing a
/// constraints -> synthesize -> measure run at this period) + the genes.
artifact::Digest candidateKey(const artifact::Digest& context,
                              const std::vector<double>& genes) {
  artifact::Hasher hasher;
  hasher.str("evo-cand-v1");
  hasher.u32(kEvolveSchema);
  hasher.u64(context.hi).u64(context.lo);
  hasher.f64span(genes);
  return hasher.digest();
}

/// Short content digest of a gene vector for the text report (the JSON
/// carries the full vector).
std::string genesDigest(const std::vector<double>& genes) {
  artifact::Hasher hasher;
  hasher.str("evo-genes");
  hasher.f64span(genes);
  return hasher.digest().hex();
}

/// Genotype -> phenotype -> fitness: per-cell thresholds, window
/// restriction, constrained synthesis, statistical measurement. Safe to run
/// concurrently once the flow's nominal/stat/subject artifacts are resolved.
CandidateFitness computeFitness(core::TuningFlow& flow, double period,
                                const std::vector<std::string>& geneCells,
                                const std::vector<double>& genes) {
  std::map<std::string, double> thresholds;
  for (std::size_t i = 0; i < geneCells.size(); ++i) {
    thresholds.emplace(geneCells[i], genes[i]);
  }
  const tuning::LibraryConstraints constraints =
      tuning::constrainWithThresholds(flow.statLibrary(), thresholds);
  const synth::Synthesizer synthesizer(flow.nominalLibrary(), &constraints);
  sta::ClockSpec clock = flow.config().clock;
  clock.period = period;
  const core::DesignMeasurement m = flow.measure(
      synthesizer.run(flow.subject(), clock, flow.config().synthesis), period);

  CandidateFitness fitness;
  fitness.feasible = m.success();
  fitness.area = m.area();
  fitness.power = m.power.meanPower;
  for (const core::PathRecord& path : m.paths) {
    fitness.sigma = std::max(fitness.sigma, path.sigma);
  }
  return fitness;
}

/// Objective point in the canonical sigma/area/power order; infeasible
/// candidates sit at +inf on every axis so any feasible point dominates them
/// while two infeasible points never dominate each other.
std::vector<double> objectivePoint(const CandidateFitness& fitness) {
  if (!fitness.feasible) return {kInf, kInf, kInf};
  return {fitness.sigma, fitness.area, fitness.power};
}

struct Candidate {
  std::string origin;
  std::vector<double> genes;
};

struct Evaluated {
  std::string origin;  ///< first submission that produced this genotype
  std::vector<double> genes;
  CandidateFitness fitness;
  std::vector<double> objectives;
};

/// The archive of every evaluated genotype plus the batched, memoized
/// evaluator. The reported front is the nondominated set of the archive, so
/// no evaluated point — seed or offspring — is ever lost to generational
/// replacement.
class Archive {
 public:
  Archive(core::TuningFlow& flow, double period,
          const std::vector<std::string>& geneCells)
      : flow_(flow),
        period_(period),
        geneCells_(geneCells),
        context_(flow.measurementContextDigest(period)) {}

  /// Evaluates a batch of candidates (deduplicated against everything seen
  /// so far; first origin wins) and returns one archive id per candidate.
  /// Fresh genotypes fan out on the thread pool with grain 1; each goes
  /// through cachedStage, so results are bit-identical for any thread count
  /// and a warm rerun is all hits.
  std::vector<std::size_t> evaluate(const std::vector<Candidate>& batch) {
    std::vector<std::size_t> ids(batch.size());
    std::vector<std::size_t> fresh;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto [it, inserted] =
          seen_.try_emplace(batch[i].genes, entries_.size() + fresh.size());
      ids[i] = it->second;
      if (inserted) fresh.push_back(i);
    }
    const std::vector<CandidateFitness> fitnesses = parallel::parallelMap(
        fresh.size(),
        [&](std::size_t k) {
          const Candidate& candidate = batch[fresh[k]];
          return core::cachedStage<CandidateFitness>(
              flow_.cache(), flow_.memCache(), "evo.stage.candidate",
              candidateKey(context_, candidate.genes),
              [&] {
                return computeFitness(flow_, period_, geneCells_,
                                      candidate.genes);
              },
              encodeFitness, decodeFitness);
        },
        1);
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      const Candidate& candidate = batch[fresh[k]];
      Evaluated entry;
      entry.origin = candidate.origin;
      entry.genes = candidate.genes;
      entry.fitness = fitnesses[k];
      entry.objectives = objectivePoint(fitnesses[k]);
      entries_.push_back(std::move(entry));
    }
    obs::MetricsRegistry::global().counter("evo.evaluations").add(fresh.size());
    return ids;
  }

  [[nodiscard]] const std::vector<Evaluated>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t idOf(const std::vector<double>& genes) const {
    return seen_.at(genes);
  }

 private:
  core::TuningFlow& flow_;
  double period_;
  const std::vector<std::string>& geneCells_;
  artifact::Digest context_;
  std::vector<Evaluated> entries_;
  std::map<std::vector<double>, std::size_t> seen_;
};

/// The 20 paper-method individuals: each Table 2 sweep point's cluster
/// thresholds projected onto the per-cell genotype. constrainWithThresholds
/// on such a genotype reproduces tuneLibrary(forMethod(...)) exactly, so a
/// seed's fitness equals the paper sweep's measurement at this period. Genes
/// are injected unclamped — a threshold outside [geneMin, geneMax] still
/// seeds the search (variation clamps only its own children).
std::vector<Candidate> seedCandidates(
    const statlib::StatLibrary& library,
    const std::vector<std::string>& geneCells) {
  std::vector<Candidate> seeds;
  for (const tuning::TuningMethod method : tuning::kAllTuningMethods) {
    for (const double value : tuning::sweepValues(method)) {
      const tuning::TuningConfig config =
          tuning::TuningConfig::forMethod(method, value);
      const std::map<std::string, tuning::ClusterThreshold> thresholds =
          tuning::extractThresholds(library, config);
      Candidate seed;
      seed.origin = "seed:" + std::string(cliMethodName(method)) + "@" +
                    fmt17(value);
      seed.genes.reserve(geneCells.size());
      for (const std::string& cellName : geneCells) {
        const statlib::StatCell* cell = library.findCell(cellName);
        seed.genes.push_back(
            thresholds.at(tuning::clusterName(*cell, config)).sigmaThreshold);
      }
      seeds.push_back(std::move(seed));
    }
  }
  return seeds;
}

/// Appends `ids` to `pool` keeping first occurrence of each archive id.
void mergeUnique(std::vector<std::size_t>& pool,
                 const std::vector<std::size_t>& ids) {
  std::set<std::size_t> have(pool.begin(), pool.end());
  for (const std::size_t id : ids) {
    if (have.insert(id).second) pool.push_back(id);
  }
}

/// Crowding distances of a whole population: group by rank, score each rank
/// class independently, scatter back.
std::vector<double> populationCrowding(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::size_t>& ranks,
    const std::vector<std::size_t>& objectives) {
  std::vector<double> crowding(points.size(), 0.0);
  const std::size_t maxRank =
      ranks.empty() ? 0 : *std::max_element(ranks.begin(), ranks.end());
  for (std::size_t rank = 0; rank <= maxRank; ++rank) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] == rank) members.push_back(i);
    }
    if (members.empty()) continue;
    const std::vector<double> distances =
        crowdingDistances(points, members, objectives);
    for (std::size_t m = 0; m < members.size(); ++m) {
      crowding[members[m]] = distances[m];
    }
  }
  return crowding;
}

void lintGate(const core::TuningFlow& flow, const EvolveParams& params) {
  if (flow.config().lintMode == core::LintMode::kOff) return;
  const lint::LintEngine engine = lint::LintEngine::withAllRules();
  lint::LintSubject subject;
  subject.evolveParams = &params;
  const lint::LintReport report =
      engine.run(subject, lint::packBit(lint::RulePack::kEvo));
  if (report.empty()) return;
  std::ostringstream text;
  text << "lint(evolve): " << report.summary();
  for (const lint::Diagnostic& d : report.diagnostics()) {
    text << "\n  [" << d.ruleId << "] " << d.objectPath << ": " << d.message;
  }
  if (flow.config().lintMode == core::LintMode::kError && report.hasErrors()) {
    throw std::runtime_error(text.str());
  }
  std::fprintf(stderr, "%s\n", text.str().c_str());
}

}  // namespace

EvolveRunResult runEvolveJob(core::TuningFlow& flow, const EvolveJob& job) {
  SCT_TRACE_SPAN("evo.run");
  lintGate(flow, job.params);
  const double period = job.flow.period;
  if (!(period > 0.0)) {
    throw std::runtime_error("evolve job needs a positive clock period");
  }
  const std::vector<std::size_t> objectives =
      parseObjectives(job.params.objectives);
  const EvolveParams& params = job.params;

  // Resolve the flow's lazy artifacts before any parallel region: candidate
  // evaluations run concurrently and must only ever read them.
  const statlib::StatLibrary& stat = flow.statLibrary();
  (void)flow.nominalLibrary();
  (void)flow.subject();

  // Genotype layout: one gene per statistical cell with timing arcs, in
  // sorted name order. Tie cells carry no windows under any threshold.
  std::vector<std::string> geneCells;
  for (const statlib::StatCell* cell : stat.cells()) {
    if (!cell->arcs().empty()) geneCells.push_back(cell->name());
  }
  std::sort(geneCells.begin(), geneCells.end());

  Archive archive(flow, period, geneCells);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  std::uint64_t submitted = 0;

  // --- generation 0: paper seeds + random immigrants ----------------------
  const numeric::Rng master(params.seed);
  std::vector<Candidate> initial = seedCandidates(stat, geneCells);
  const std::size_t seedCount = initial.size();
  for (std::size_t i = 0; i < params.population; ++i) {
    numeric::Rng rng = master.child(0).child(i);
    Candidate candidate;
    candidate.origin = "init:" + std::to_string(i);
    candidate.genes.reserve(geneCells.size());
    for (std::size_t g = 0; g < geneCells.size(); ++g) {
      candidate.genes.push_back(rng.uniform(params.geneMin, params.geneMax));
    }
    initial.push_back(std::move(candidate));
  }
  submitted += initial.size();
  std::vector<std::size_t> pool;
  mergeUnique(pool, archive.evaluate(initial));

  const auto pointsOf = [&](const std::vector<std::size_t>& ids) {
    std::vector<std::vector<double>> points;
    points.reserve(ids.size());
    for (const std::size_t id : ids) {
      points.push_back(archive.entries()[id].objectives);
    }
    return points;
  };
  const auto survivors = [&](const std::vector<std::size_t>& ids) {
    const std::size_t count = std::min(params.population, ids.size());
    std::vector<std::size_t> picked;
    picked.reserve(count);
    for (const std::size_t local :
         selectSurvivors(pointsOf(ids), count, objectives)) {
      picked.push_back(ids[local]);
    }
    return picked;
  };

  std::vector<std::size_t> population = survivors(pool);
  registry.counter("evo.generations").inc();

  // --- generations 1..G: tournament -> SBX/mutation -> environmental
  // selection. Offspring i of generation g draws only from the counter-based
  // stream master.child(g).child(i), so the batch is order-independent.
  VariationConfig variation;
  variation.geneMin = params.geneMin;
  variation.geneMax = params.geneMax;
  for (std::size_t gen = 1; gen <= params.generations; ++gen) {
    const std::vector<std::vector<double>> points = pointsOf(population);
    const std::vector<std::size_t> ranks =
        nondominatedRanks(points, objectives);
    const std::vector<double> crowding =
        populationCrowding(points, ranks, objectives);

    std::vector<Candidate> offspring;
    offspring.reserve(params.population);
    for (std::size_t i = 0; i < params.population; ++i) {
      numeric::Rng rng = master.child(gen).child(i);
      const std::size_t a = tournamentPick(ranks, crowding, rng);
      const std::size_t b = tournamentPick(ranks, crowding, rng);
      Candidate child;
      child.origin = "gen" + std::to_string(gen) + ":" + std::to_string(i);
      child.genes = varied(archive.entries()[population[a]].genes,
                           archive.entries()[population[b]].genes, variation,
                           rng);
      offspring.push_back(std::move(child));
    }
    submitted += offspring.size();
    std::vector<std::size_t> merged = population;
    mergeUnique(merged, archive.evaluate(offspring));
    population = survivors(merged);
    registry.counter("evo.generations").inc();
  }
  registry.gauge("evo.archive").set(
      static_cast<double>(archive.entries().size()));

  // --- reported front: nondominated set of the whole archive --------------
  std::vector<std::size_t> allIds(archive.entries().size());
  for (std::size_t i = 0; i < allIds.size(); ++i) allIds[i] = i;
  std::vector<std::size_t> frontIds = paretoFront(pointsOf(allIds), objectives);
  std::sort(frontIds.begin(), frontIds.end(),
            [&](std::size_t a, std::size_t b) {
              const Evaluated& ea = archive.entries()[a];
              const Evaluated& eb = archive.entries()[b];
              if (ea.fitness.sigma != eb.fitness.sigma)
                return ea.fitness.sigma < eb.fitness.sigma;
              if (ea.fitness.area != eb.fitness.area)
                return ea.fitness.area < eb.fitness.area;
              if (ea.fitness.power != eb.fitness.power)
                return ea.fitness.power < eb.fitness.power;
              return ea.genes < eb.genes;
            });

  EvolveRunResult result;
  result.evaluations = submitted;
  result.unique = archive.entries().size();
  for (const std::size_t id : frontIds) {
    const Evaluated& entry = archive.entries()[id];
    FrontPoint point;
    point.origin = entry.origin;
    point.feasible = entry.fitness.feasible;
    point.sigma = entry.fitness.sigma;
    point.area = entry.fitness.area;
    point.power = entry.fitness.power;
    point.genes = entry.genes;
    result.front.push_back(std::move(point));
    result.success = result.success || entry.fitness.feasible;
  }

  // --- baselines: the seeds, each checked against the front ---------------
  const std::vector<Candidate> seeds = seedCandidates(stat, geneCells);
  std::size_t dominatedCount = 0;
  for (const Candidate& seed : seeds) {
    const Evaluated& entry = archive.entries()[archive.idOf(seed.genes)];
    BaselinePoint baseline;
    baseline.origin = seed.origin;
    baseline.feasible = entry.fitness.feasible;
    baseline.sigma = entry.fitness.sigma;
    baseline.area = entry.fitness.area;
    baseline.power = entry.fitness.power;
    for (const std::size_t id : frontIds) {
      const std::vector<double>& f = archive.entries()[id].objectives;
      bool covers = true;
      for (const std::size_t k : objectives) {
        if (f[k] > entry.objectives[k]) {
          covers = false;
          break;
        }
      }
      if (covers) {
        baseline.dominated = true;
        break;
      }
    }
    dominatedCount += baseline.dominated ? 1 : 0;
    result.baselines.push_back(std::move(baseline));
  }

  // --- deterministic text report ------------------------------------------
  std::string objectiveList;
  for (const std::size_t k : objectives) {
    if (!objectiveList.empty()) objectiveList += ",";
    objectiveList += kObjectiveNames[k];
  }
  std::ostringstream report;
  report << "evolve-report v1\n";
  report << "design " << job.flow.workload << " period " << fmt17(period)
         << "\n";
  report << "config population " << params.population << " generations "
         << params.generations << " objectives " << objectiveList << " seed "
         << params.seed << " genes " << geneCells.size() << " gene-min "
         << fmt17(params.geneMin) << " gene-max " << fmt17(params.geneMax)
         << "\n";
  report << "evaluations " << result.evaluations << " unique " << result.unique
         << " seeds " << seedCount << "\n";
  for (const BaselinePoint& baseline : result.baselines) {
    report << "baseline " << baseline.origin << " feasible "
           << baseline.feasible << " sigma " << fmt17(baseline.sigma)
           << " area " << fmt17(baseline.area) << " power "
           << fmt17(baseline.power) << " dominated " << baseline.dominated
           << "\n";
  }
  report << "front " << result.front.size() << "\n";
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    const FrontPoint& point = result.front[i];
    report << "point " << i << " origin " << point.origin << " feasible "
           << point.feasible << " sigma " << fmt17(point.sigma) << " area "
           << fmt17(point.area) << " power " << fmt17(point.power)
           << " genes-digest " << genesDigest(point.genes) << "\n";
  }
  result.report = report.str();

  // --- deterministic JSON rendering ---------------------------------------
  std::ostringstream json;
  json << "{\"version\":" << kEvolveSchema << ",\"workload\":\""
       << job.flow.workload << "\",\"period\":" << fmt17(period)
       << ",\"population\":" << params.population
       << ",\"generations\":" << params.generations << ",\"objectives\":[";
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    if (i != 0) json << ",";
    json << "\"" << kObjectiveNames[objectives[i]] << "\"";
  }
  json << "],\"evaluations\":" << result.evaluations
       << ",\"unique\":" << result.unique << ",\"baselines\":[";
  for (std::size_t i = 0; i < result.baselines.size(); ++i) {
    const BaselinePoint& baseline = result.baselines[i];
    if (i != 0) json << ",";
    json << "{\"origin\":\"" << baseline.origin
         << "\",\"feasible\":" << (baseline.feasible ? "true" : "false")
         << ",\"sigma\":" << fmt17(baseline.sigma)
         << ",\"area\":" << fmt17(baseline.area)
         << ",\"power\":" << fmt17(baseline.power)
         << ",\"dominated\":" << (baseline.dominated ? "true" : "false")
         << "}";
  }
  json << "],\"front\":[";
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    const FrontPoint& point = result.front[i];
    if (i != 0) json << ",";
    json << "{\"origin\":\"" << point.origin
         << "\",\"feasible\":" << (point.feasible ? "true" : "false")
         << ",\"sigma\":" << fmt17(point.sigma)
         << ",\"area\":" << fmt17(point.area)
         << ",\"power\":" << fmt17(point.power) << ",\"genes\":[";
    for (std::size_t g = 0; g < point.genes.size(); ++g) {
      if (g != 0) json << ",";
      json << fmt17(point.genes[g]);
    }
    json << "]}";
  }
  json << "]}\n";
  result.json = json.str();

  // --- one-line human summary ---------------------------------------------
  std::ostringstream summary;
  summary << "evolve " << job.flow.workload << ": front "
          << result.front.size() << " points | dominates " << dominatedCount
          << "/" << result.baselines.size() << " baselines | "
          << result.evaluations << " evals (" << result.unique << " unique)";
  result.summary = summary.str();
  return result;
}

}  // namespace sct::evo
