#pragma once
// Multi-objective evolutionary window tuner (DESIGN.md §17). The genotype is
// one sigma-threshold gene per statistical cell; the phenotype is the
// per-pin LUT-window constraint set produced by
// tuning::constrainWithThresholds; fitness is a full constraints ->
// synthesize -> measure evaluation (worst-path sigma, area, mean power).
// The five paper methods' Table 2 sweep points are injected as seed
// individuals, so the reported Pareto front weakly dominates every paper
// point by construction. Every evaluated genotype is memoized through
// core::cachedStage, generation batches fan out on src/parallel with
// counter-based RNG streams, and the report/json bytes depend only on the
// job — never on cache state, thread count, or transport.

#include <cstdint>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/flow_job.hpp"
#include "evo/params.hpp"

namespace sct::evo {

/// One self-contained evolve request, shared by the CLI `evolve` command and
/// the sctuned daemon (same byte-identity contract as core::FlowJob).
struct EvolveJob {
  /// Flow context: profile/workload/period/mc/lint. The method/value fields
  /// are ignored — the tuner explores the whole method space itself.
  core::FlowJob flow;
  EvolveParams params;
};

/// One member of the reported Pareto front.
struct FrontPoint {
  std::string origin;  ///< "seed:<method>@<value>" | "init:<i>" | "gen<g>:<i>"
  bool feasible = false;
  double sigma = 0.0;  ///< worst endpoint path sigma [ns]
  double area = 0.0;   ///< mapped area [um^2]
  double power = 0.0;  ///< mean dynamic power [uW]
  std::vector<double> genes;
};

/// One of the 20 paper-method sweep points evaluated as a seed individual.
struct BaselinePoint {
  std::string origin;  ///< "seed:<method>@<value>"
  bool feasible = false;
  double sigma = 0.0;
  double area = 0.0;
  double power = 0.0;
  /// Weakly dominated-or-matched by some front point over the enabled
  /// objectives — true for every baseline by construction (the seeds live in
  /// the archive the front is drawn from); asserted by the tests.
  bool dominated = false;
};

struct EvolveRunResult {
  bool success = false;  ///< at least one feasible front point
  std::string summary;   ///< one-line human summary
  std::string report;    ///< deterministic "evolve-report v1" text (%.17g)
  std::string json;      ///< same result as one deterministic JSON document
  std::vector<FrontPoint> front;        ///< sorted by (sigma, area, power)
  std::vector<BaselinePoint> baselines; ///< method-major, sweep-value order
  std::uint64_t evaluations = 0;  ///< genotypes submitted over the run
  std::uint64_t unique = 0;       ///< distinct genotypes (archive size)
};

/// Runs the tuner on an already-constructed flow. Candidate fitness goes
/// through core::cachedStage ("evo.stage.candidate") against the flow's
/// cache tiers, keyed by flow.measurementContextDigest(period) + the gene
/// vector, so a warm rerun reports zero candidate misses. Gated by the lint
/// evo pack according to flow.config().lintMode. Throws std::runtime_error
/// on an invalid job (lint errors, missing period, unknown objectives).
[[nodiscard]] EvolveRunResult runEvolveJob(core::TuningFlow& flow,
                                           const EvolveJob& job);

}  // namespace sct::evo
