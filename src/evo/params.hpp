#pragma once
// Evolve-parameter struct, kept dependency-free (plain ints/doubles/string)
// so the lint layer can validate configs without linking the tuner.

#include <cstddef>
#include <cstdint>
#include <string>

namespace sct::evo {

/// Knobs of the NSGA-II window tuner (src/evo/tuner.hpp). Validated by the
/// lint `evo.*` pack before a run starts.
struct EvolveParams {
  std::size_t population = 16;  ///< survivors per generation (>= 2)
  std::size_t generations = 6;  ///< variation rounds after the seeded gen 0
  /// Comma-separated subset of sigma,area,power used for dominance; all
  /// three objectives are always measured and reported.
  std::string objectives = "sigma,area,power";
  double geneMin = 0.002;  ///< sigma-threshold gene lower bound [ns]
  double geneMax = 0.06;   ///< sigma-threshold gene upper bound [ns]
  std::uint64_t seed = 2014;  ///< master stream for init + variation
};

}  // namespace sct::evo
