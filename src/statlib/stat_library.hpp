#pragma once
// Statistical library (paper section IV, Fig. 2): N Monte-Carlo library
// instances are merged entry-wise into tables of (mean, sigma). The result
// has exactly the shape of a nominal library but stores local-variation
// statistics instead of single delays.

#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/library.hpp"
#include "numeric/statistics.hpp"

namespace sct::statlib {

/// Mean and sigma surfaces over one LUT's axes.
class StatLut {
 public:
  StatLut() = default;
  StatLut(numeric::Axis slew, numeric::Axis load)
      : slew_(std::move(slew)),
        load_(std::move(load)),
        mean_(slew_.size(), load_.size()),
        sigma_(slew_.size(), load_.size()) {}

  [[nodiscard]] const numeric::Axis& slewAxis() const noexcept { return slew_; }
  [[nodiscard]] const numeric::Axis& loadAxis() const noexcept { return load_; }
  [[nodiscard]] const numeric::Grid2d& mean() const noexcept { return mean_; }
  [[nodiscard]] numeric::Grid2d& mean() noexcept { return mean_; }
  [[nodiscard]] const numeric::Grid2d& sigma() const noexcept { return sigma_; }
  [[nodiscard]] numeric::Grid2d& sigma() noexcept { return sigma_; }

  [[nodiscard]] std::size_t rows() const noexcept { return mean_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return mean_.cols(); }
  [[nodiscard]] bool empty() const noexcept { return mean_.empty(); }

  /// Bilinearly interpolated statistics at an operating point (eqs. 2-4
  /// applied to both surfaces).
  [[nodiscard]] numeric::NormalSummary lookup(double slew,
                                              double load) const noexcept;

 private:
  numeric::Axis slew_;
  numeric::Axis load_;
  numeric::Grid2d mean_;
  numeric::Grid2d sigma_;
};

/// Statistics of one timing arc (rise and fall processed separately, like
/// the underlying Liberty tables).
struct StatArc {
  std::string relatedPin;
  std::string outputPin;
  StatLut rise;
  StatLut fall;

  /// Worst-edge delay statistics at an operating point: the edge with the
  /// larger mean delay decides (setup-oriented analysis).
  [[nodiscard]] numeric::NormalSummary worstDelayStats(double slew,
                                                       double load) const noexcept;
};

class StatCell {
 public:
  StatCell(std::string name, liberty::CellFunction function,
           double driveStrength, double area)
      : name_(std::move(name)),
        function_(function),
        drive_strength_(driveStrength),
        area_(area) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] liberty::CellFunction function() const noexcept {
    return function_;
  }
  [[nodiscard]] double driveStrength() const noexcept { return drive_strength_; }
  [[nodiscard]] double area() const noexcept { return area_; }

  [[nodiscard]] const std::vector<StatArc>& arcs() const noexcept {
    return arcs_;
  }
  void addArc(StatArc arc) { arcs_.push_back(std::move(arc)); }

  [[nodiscard]] const StatArc* findArc(std::string_view related,
                                       std::string_view output) const noexcept;

  /// Output pins that have at least one arc.
  [[nodiscard]] std::vector<std::string> outputPins() const;

  /// Entry-wise maximum sigma over all delay tables related to one output
  /// pin (paper section VI.C: the worst case across the pin's tables).
  /// Returns an empty LUT when the pin has no arcs.
  [[nodiscard]] StatLut maxSigmaLutForPin(std::string_view outputPin) const;

  /// Entry-wise maximum sigma over *all* delay tables of the cell.
  [[nodiscard]] StatLut maxSigmaLut() const;

 private:
  std::string name_;
  liberty::CellFunction function_;
  double drive_strength_;
  double area_;
  std::vector<StatArc> arcs_;
};

class StatLibrary {
 public:
  StatLibrary() = default;
  explicit StatLibrary(std::string name) : name_(std::move(name)) {}

  StatLibrary(StatLibrary&&) noexcept = default;
  StatLibrary& operator=(StatLibrary&&) noexcept = default;
  StatLibrary(const StatLibrary&) = delete;
  StatLibrary& operator=(const StatLibrary&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t sampleCount() const noexcept { return samples_; }
  void setSampleCount(std::size_t n) noexcept { samples_ = n; }

  StatCell* addCell(StatCell cell);
  [[nodiscard]] const StatCell* findCell(std::string_view name) const noexcept;
  [[nodiscard]] std::vector<const StatCell*> cells() const;

  /// Cells grouped by drive strength (tuning clusters, section VI.A).
  [[nodiscard]] std::map<double, std::vector<const StatCell*>>
  strengthClusters() const;

 private:
  std::string name_;
  std::size_t samples_ = 0;
  std::vector<std::unique_ptr<StatCell>> cells_;
  std::map<std::string, StatCell*, std::less<>> by_name_;
};

/// Merges N Monte-Carlo library instances entry-wise (Fig. 2). All
/// libraries must contain the same cells with identically shaped tables;
/// violations throw std::invalid_argument.
[[nodiscard]] StatLibrary buildStatLibrary(
    std::span<const liberty::Library> libraries);

}  // namespace sct::statlib
