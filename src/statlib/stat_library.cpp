#include "statlib/stat_library.hpp"

#include <stdexcept>
#include <string>

#include "numeric/grid_batch.hpp"
#include "numeric/interp.hpp"
#include "numeric/statistics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"

namespace sct::statlib {

numeric::NormalSummary StatLut::lookup(double slew, double load) const noexcept {
  // The mean and sigma surfaces share the StatLut's axis pair: one
  // coordinate search serves both (bit-identical to two bilinear() calls by
  // the interpCoords contract).
  const numeric::InterpCoords coords =
      numeric::interpCoords(slew_, load_, slew, load);
  numeric::NormalSummary out;
  out.mean = coords.apply(mean_);
  out.sigma = coords.apply(sigma_);
  return out;
}

numeric::NormalSummary StatArc::worstDelayStats(double slew,
                                                double load) const noexcept {
  const numeric::NormalSummary r = rise.lookup(slew, load);
  const numeric::NormalSummary f = fall.lookup(slew, load);
  return r.mean >= f.mean ? r : f;
}

const StatArc* StatCell::findArc(std::string_view related,
                                 std::string_view output) const noexcept {
  for (const StatArc& arc : arcs_) {
    if (arc.relatedPin == related && arc.outputPin == output) return &arc;
  }
  return nullptr;
}

std::vector<std::string> StatCell::outputPins() const {
  std::vector<std::string> out;
  for (const StatArc& arc : arcs_) {
    bool seen = false;
    for (const std::string& name : out) {
      if (name == arc.outputPin) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(arc.outputPin);
  }
  return out;
}

namespace {

/// Entry-wise max of sigma surfaces over a set of arcs.
StatLut maxSigmaOver(const std::vector<const StatArc*>& arcs) {
  if (arcs.empty()) return {};
  StatLut out(arcs.front()->rise.slewAxis(), arcs.front()->rise.loadAxis());
  out.sigma() = arcs.front()->rise.sigma();
  out.mean() = arcs.front()->rise.mean();
  for (const StatArc* arc : arcs) {
    out.sigma().maxWith(arc->rise.sigma());
    out.sigma().maxWith(arc->fall.sigma());
    out.mean().maxWith(arc->rise.mean());
    out.mean().maxWith(arc->fall.mean());
  }
  return out;
}

}  // namespace

StatLut StatCell::maxSigmaLutForPin(std::string_view outputPin) const {
  std::vector<const StatArc*> arcs;
  for (const StatArc& arc : arcs_) {
    if (arc.outputPin == outputPin) arcs.push_back(&arc);
  }
  return maxSigmaOver(arcs);
}

StatLut StatCell::maxSigmaLut() const {
  std::vector<const StatArc*> arcs;
  arcs.reserve(arcs_.size());
  for (const StatArc& arc : arcs_) arcs.push_back(&arc);
  return maxSigmaOver(arcs);
}

StatCell* StatLibrary::addCell(StatCell cell) {
  auto owned = std::make_unique<StatCell>(std::move(cell));
  StatCell* raw = owned.get();
  cells_.push_back(std::move(owned));
  by_name_[raw->name()] = raw;
  return raw;
}

const StatCell* StatLibrary::findCell(std::string_view name) const noexcept {
  const auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : nullptr;
}

std::vector<const StatCell*> StatLibrary::cells() const {
  std::vector<const StatCell*> out;
  out.reserve(cells_.size());
  for (const auto& c : cells_) out.push_back(c.get());
  return out;
}

std::map<double, std::vector<const StatCell*>> StatLibrary::strengthClusters()
    const {
  std::map<double, std::vector<const StatCell*>> out;
  for (const auto& c : cells_) out[c->driveStrength()].push_back(c.get());
  return out;
}

namespace {

/// Running sigma-of-sigma convergence probe (DESIGN.md §12): while a merge
/// accumulates instances 1..N into one LUT entry, the running sigma estimate
/// at sample-count checkpoints (N/4, N/2, 3N/4, N) is folded into one
/// RunningStats per checkpoint, across every entry the probe sees. A flat
/// sigma_mean and a shrinking sigma_sigma between checkpoints mean the MC
/// sample count has converged. Pure observability: the probe only reads the
/// running estimate and never feeds back into the merged tables.
struct ConvergenceProbe {
  std::vector<std::size_t> checkpoints;            ///< ascending, >= 2
  std::vector<numeric::RunningStats> sigmaAcross;  ///< one per checkpoint
};

/// Per-library arc pointers of one (cell, arc) position, resolved once and
/// shared by the rise and fall merges. Index fast path: Monte-Carlo library
/// instances list cells and arcs in catalogue order, so the reference
/// position is tried (and name-verified) first; the by-name lookups only
/// run for ad-hoc libraries that violate the ordering.
std::vector<const liberty::TimingArc*> resolveArcs(
    std::span<const liberty::Library> libraries, std::size_t cellIndex,
    const std::string& cellName, std::size_t arcIndex,
    const liberty::TimingArc& refArc) {
  std::vector<const liberty::TimingArc*> out;
  out.reserve(libraries.size());
  for (const liberty::Library& lib : libraries) {
    const liberty::Cell* cell = lib.cellAt(cellIndex);
    if (cell == nullptr || cell->name() != cellName) {
      cell = lib.findCell(cellName);
    }
    if (cell == nullptr) {
      throw std::invalid_argument("cell '" + cellName +
                                  "' missing from library " + lib.name());
    }
    const liberty::TimingArc* arc =
        arcIndex < cell->arcs().size() ? &cell->arcs()[arcIndex] : nullptr;
    if (arc == nullptr || arc->relatedPin != refArc.relatedPin ||
        arc->outputPin != refArc.outputPin) {
      arc = cell->findArc(refArc.relatedPin, refArc.outputPin);
    }
    if (arc == nullptr) {
      throw std::invalid_argument("arc " + refArc.relatedPin + "->" +
                                  refArc.outputPin + " missing on " +
                                  cellName + " in " + lib.name());
    }
    out.push_back(arc);
  }
  return out;
}

/// Collects one LUT position across all library instances and reduces it to
/// (mean, sigma) — the "temporary table" of Fig. 2. The instance grids are
/// transposed into a SoA batch first, so the reduction runs one contiguous
/// pass per entry; the RunningStats accumulation order (instance 0..N-1) is
/// the scalar loop's, hence the merged tables are bit-identical.
StatLut mergeLuts(std::span<const liberty::TimingArc* const> arcs,
                  const std::string& cellName,
                  const liberty::TimingArc& refArc, bool rise,
                  ConvergenceProbe* probe = nullptr) {
  const liberty::Lut& refLut = rise ? refArc.riseDelay : refArc.fallDelay;

  std::vector<const numeric::Grid2d*> grids;
  grids.reserve(arcs.size());
  for (const liberty::TimingArc* arc : arcs) {
    const liberty::Lut& lut = rise ? arc->riseDelay : arc->fallDelay;
    if (!lut.sameShape(refLut)) {
      throw std::invalid_argument("table shape mismatch on " + cellName);
    }
    grids.push_back(&lut.values());
  }
  numeric::GridBatch batch(refLut.rows(), refLut.cols(), grids.size());
  batch.gather(grids);

  StatLut out(refLut.slewAxis(), refLut.loadAxis());
  for (std::size_t r = 0; r < refLut.rows(); ++r) {
    for (std::size_t c = 0; c < refLut.cols(); ++c) {
      const std::span<const double> values = batch.cell(r, c);
      numeric::RunningStats stats;
      if (probe == nullptr) {
        for (const double v : values) stats.add(v);
      } else {
        std::size_t next = 0;
        for (std::size_t j = 0; j < values.size(); ++j) {
          stats.add(values[j]);
          if (next < probe->checkpoints.size() &&
              j + 1 == probe->checkpoints[next]) {
            probe->sigmaAcross[next].add(stats.stddev());
            ++next;
          }
        }
      }
      out.mean().at(r, c) = stats.mean();
      out.sigma().at(r, c) = stats.stddev();
    }
  }
  return out;
}

}  // namespace

StatLibrary buildStatLibrary(std::span<const liberty::Library> libraries) {
  SCT_TRACE_SPAN("statlib.merge");
  if (libraries.empty()) {
    throw std::invalid_argument("need at least one library instance");
  }
  const liberty::Library& ref = libraries.front();
  StatLibrary out(ref.name() + "_stat");
  out.setSampleCount(libraries.size());
  // Sample-count checkpoints for the convergence probe; empty (and free)
  // unless metrics collection is on.
  std::vector<std::size_t> checkpoints;
  if (obs::metricsEnabled()) {
    for (const std::size_t quarter : {1u, 2u, 3u, 4u}) {
      const std::size_t k = libraries.size() * quarter / 4;
      if (k >= 2 && (checkpoints.empty() || k > checkpoints.back())) {
        checkpoints.push_back(k);
      }
    }
  }
  struct MergedCell {
    StatCell cell;
    std::vector<numeric::RunningStats> sigmaAcross;
  };
  // One task per cell; each task runs the exact serial entry-wise reduction
  // of Fig. 2 for its own cell, so the merged tables do not depend on the
  // thread count. Cells are re-attached in reference order afterwards.
  const std::vector<const liberty::Cell*> refCells = ref.cells();
  std::vector<MergedCell> merged = parallel::parallelMap(
      refCells.size(),
      [&](std::size_t i) {
        const liberty::Cell* refCell = refCells[i];
        StatCell cell(refCell->name(), refCell->function(),
                      refCell->driveStrength(), refCell->area());
        ConvergenceProbe probe;
        probe.checkpoints = checkpoints;
        probe.sigmaAcross.resize(checkpoints.size());
        ConvergenceProbe* p = checkpoints.empty() ? nullptr : &probe;
        const std::vector<liberty::TimingArc>& refArcs = refCell->arcs();
        for (std::size_t a = 0; a < refArcs.size(); ++a) {
          const liberty::TimingArc& refArc = refArcs[a];
          const std::vector<const liberty::TimingArc*> resolved =
              resolveArcs(libraries, i, refCell->name(), a, refArc);
          StatArc arc;
          arc.relatedPin = refArc.relatedPin;
          arc.outputPin = refArc.outputPin;
          arc.rise =
              mergeLuts(resolved, refCell->name(), refArc, /*rise=*/true, p);
          arc.fall =
              mergeLuts(resolved, refCell->name(), refArc, /*rise=*/false, p);
          cell.addArc(std::move(arc));
        }
        return MergedCell{std::move(cell), std::move(probe.sigmaAcross)};
      },
      /*grain=*/4);
  for (MergedCell& m : merged) out.addCell(std::move(m.cell));
  if (!checkpoints.empty()) {
    // Fold the per-cell probes in reference order and publish one pair of
    // gauges per checkpoint.
    std::vector<numeric::RunningStats> total(checkpoints.size());
    for (const MergedCell& m : merged) {
      for (std::size_t i = 0; i < checkpoints.size(); ++i) {
        total[i].merge(m.sigmaAcross[i]);
      }
    }
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.gauge("statlib.convergence.samples")
        .set(static_cast<double>(libraries.size()));
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
      const std::string prefix =
          "statlib.convergence.k" + std::to_string(checkpoints[i]) + ".";
      registry.gauge(prefix + "sigma_mean").set(total[i].mean());
      registry.gauge(prefix + "sigma_sigma").set(total[i].stddev());
    }
  }
  return out;
}

}  // namespace sct::statlib
