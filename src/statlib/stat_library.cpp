#include "statlib/stat_library.hpp"

#include <stdexcept>

#include "numeric/interp.hpp"
#include "parallel/parallel.hpp"

namespace sct::statlib {

numeric::NormalSummary StatLut::lookup(double slew, double load) const noexcept {
  numeric::NormalSummary out;
  out.mean = numeric::bilinear(slew_, load_, mean_, slew, load);
  out.sigma = numeric::bilinear(slew_, load_, sigma_, slew, load);
  return out;
}

numeric::NormalSummary StatArc::worstDelayStats(double slew,
                                                double load) const noexcept {
  const numeric::NormalSummary r = rise.lookup(slew, load);
  const numeric::NormalSummary f = fall.lookup(slew, load);
  return r.mean >= f.mean ? r : f;
}

const StatArc* StatCell::findArc(std::string_view related,
                                 std::string_view output) const noexcept {
  for (const StatArc& arc : arcs_) {
    if (arc.relatedPin == related && arc.outputPin == output) return &arc;
  }
  return nullptr;
}

std::vector<std::string> StatCell::outputPins() const {
  std::vector<std::string> out;
  for (const StatArc& arc : arcs_) {
    bool seen = false;
    for (const std::string& name : out) {
      if (name == arc.outputPin) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(arc.outputPin);
  }
  return out;
}

namespace {

/// Entry-wise max of sigma surfaces over a set of arcs.
StatLut maxSigmaOver(const std::vector<const StatArc*>& arcs) {
  if (arcs.empty()) return {};
  StatLut out(arcs.front()->rise.slewAxis(), arcs.front()->rise.loadAxis());
  out.sigma() = arcs.front()->rise.sigma();
  out.mean() = arcs.front()->rise.mean();
  for (const StatArc* arc : arcs) {
    out.sigma().maxWith(arc->rise.sigma());
    out.sigma().maxWith(arc->fall.sigma());
    out.mean().maxWith(arc->rise.mean());
    out.mean().maxWith(arc->fall.mean());
  }
  return out;
}

}  // namespace

StatLut StatCell::maxSigmaLutForPin(std::string_view outputPin) const {
  std::vector<const StatArc*> arcs;
  for (const StatArc& arc : arcs_) {
    if (arc.outputPin == outputPin) arcs.push_back(&arc);
  }
  return maxSigmaOver(arcs);
}

StatLut StatCell::maxSigmaLut() const {
  std::vector<const StatArc*> arcs;
  arcs.reserve(arcs_.size());
  for (const StatArc& arc : arcs_) arcs.push_back(&arc);
  return maxSigmaOver(arcs);
}

StatCell* StatLibrary::addCell(StatCell cell) {
  auto owned = std::make_unique<StatCell>(std::move(cell));
  StatCell* raw = owned.get();
  cells_.push_back(std::move(owned));
  by_name_[raw->name()] = raw;
  return raw;
}

const StatCell* StatLibrary::findCell(std::string_view name) const noexcept {
  const auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : nullptr;
}

std::vector<const StatCell*> StatLibrary::cells() const {
  std::vector<const StatCell*> out;
  out.reserve(cells_.size());
  for (const auto& c : cells_) out.push_back(c.get());
  return out;
}

std::map<double, std::vector<const StatCell*>> StatLibrary::strengthClusters()
    const {
  std::map<double, std::vector<const StatCell*>> out;
  for (const auto& c : cells_) out[c->driveStrength()].push_back(c.get());
  return out;
}

namespace {

/// Collects one LUT position across all library instances and reduces it to
/// (mean, sigma) — the "temporary table" of Fig. 2.
StatLut mergeLuts(std::span<const liberty::Library> libraries,
                  const std::string& cellName,
                  const liberty::TimingArc& refArc, bool rise) {
  const liberty::Lut& refLut = rise ? refArc.riseDelay : refArc.fallDelay;

  // Resolve the matching table in every library instance once.
  std::vector<const liberty::Lut*> instances;
  instances.reserve(libraries.size());
  for (const liberty::Library& lib : libraries) {
    const liberty::Cell* cell = lib.findCell(cellName);
    if (cell == nullptr) {
      throw std::invalid_argument("cell '" + cellName +
                                  "' missing from library " + lib.name());
    }
    const liberty::TimingArc* arc =
        cell->findArc(refArc.relatedPin, refArc.outputPin);
    if (arc == nullptr) {
      throw std::invalid_argument("arc " + refArc.relatedPin + "->" +
                                  refArc.outputPin + " missing on " +
                                  cellName + " in " + lib.name());
    }
    const liberty::Lut& lut = rise ? arc->riseDelay : arc->fallDelay;
    if (!lut.sameShape(refLut)) {
      throw std::invalid_argument("table shape mismatch on " + cellName);
    }
    instances.push_back(&lut);
  }

  // "Temporary table" reduction of Fig. 2, one entry at a time.
  StatLut out(refLut.slewAxis(), refLut.loadAxis());
  for (std::size_t r = 0; r < refLut.rows(); ++r) {
    for (std::size_t c = 0; c < refLut.cols(); ++c) {
      numeric::RunningStats stats;
      for (const liberty::Lut* lut : instances) stats.add(lut->at(r, c));
      out.mean().at(r, c) = stats.mean();
      out.sigma().at(r, c) = stats.stddev();
    }
  }
  return out;
}

}  // namespace

StatLibrary buildStatLibrary(std::span<const liberty::Library> libraries) {
  if (libraries.empty()) {
    throw std::invalid_argument("need at least one library instance");
  }
  const liberty::Library& ref = libraries.front();
  StatLibrary out(ref.name() + "_stat");
  out.setSampleCount(libraries.size());
  // One task per cell; each task runs the exact serial entry-wise reduction
  // of Fig. 2 for its own cell, so the merged tables do not depend on the
  // thread count. Cells are re-attached in reference order afterwards.
  const std::vector<const liberty::Cell*> refCells = ref.cells();
  std::vector<StatCell> merged = parallel::parallelMap(
      refCells.size(),
      [&](std::size_t i) {
        const liberty::Cell* refCell = refCells[i];
        StatCell cell(refCell->name(), refCell->function(),
                      refCell->driveStrength(), refCell->area());
        for (const liberty::TimingArc& refArc : refCell->arcs()) {
          StatArc arc;
          arc.relatedPin = refArc.relatedPin;
          arc.outputPin = refArc.outputPin;
          arc.rise =
              mergeLuts(libraries, refCell->name(), refArc, /*rise=*/true);
          arc.fall =
              mergeLuts(libraries, refCell->name(), refArc, /*rise=*/false);
          cell.addArc(std::move(arc));
        }
        return cell;
      },
      /*grain=*/4);
  for (StatCell& cell : merged) out.addCell(std::move(cell));
  return out;
}

}  // namespace sct::statlib
