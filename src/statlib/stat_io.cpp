#include "statlib/stat_io.hpp"

#include <iomanip>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>

#include "liberty/text_format.hpp"

namespace sct::statlib {
namespace {

using liberty::ParseError;
using liberty::text::axisValues;
using liberty::text::Lexer;
using liberty::text::Line;
using liberty::text::singleValue;
using liberty::text::toDouble;

void writeAxis(std::ostream& out, std::string_view key,
               const numeric::Axis& axis, const std::string& pad) {
  out << pad << key << " :";
  for (double v : axis) out << ' ' << v;
  out << " ;\n";
}

void writeGridRows(std::ostream& out, std::string_view key,
                   const numeric::Grid2d& grid, const std::string& pad) {
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    out << pad << key << " :";
    for (std::size_t c = 0; c < grid.cols(); ++c) out << ' ' << grid.at(r, c);
    out << " ;\n";
  }
}

void writeStatLut(std::ostream& out, std::string_view edge, const StatLut& lut,
                  const std::string& pad) {
  out << pad << "edge (" << edge << ") {\n";
  const std::string inner = pad + "  ";
  writeAxis(out, "index_1", lut.slewAxis(), inner);
  writeAxis(out, "index_2", lut.loadAxis(), inner);
  writeGridRows(out, "mean_row", lut.mean(), inner);
  writeGridRows(out, "sigma_row", lut.sigma(), inner);
  out << pad << "}\n";
}

StatLut readStatLut(Lexer& lexer) {
  numeric::Axis slew;
  numeric::Axis load;
  std::vector<std::vector<double>> meanRows;
  std::vector<std::vector<double>> sigmaRows;
  while (auto line = lexer.next()) {
    if (line->closesBlock) {
      if (slew.empty() || load.empty()) {
        throw ParseError(line->number, "stat LUT missing index_1/index_2");
      }
      if (meanRows.size() != slew.size() || sigmaRows.size() != slew.size()) {
        throw ParseError(line->number, "stat LUT row count mismatch");
      }
      StatLut lut(slew, load);
      for (std::size_t r = 0; r < slew.size(); ++r) {
        if (meanRows[r].size() != load.size() ||
            sigmaRows[r].size() != load.size()) {
          throw ParseError(line->number, "stat LUT row width mismatch");
        }
        for (std::size_t c = 0; c < load.size(); ++c) {
          lut.mean().at(r, c) = meanRows[r][c];
          lut.sigma().at(r, c) = sigmaRows[r][c];
        }
      }
      return lut;
    }
    if (line->head == "index_1") {
      slew = axisValues(*line);
    } else if (line->head == "index_2") {
      load = axisValues(*line);
    } else if (line->head == "mean_row" || line->head == "sigma_row") {
      std::vector<double> row;
      row.reserve(line->values.size());
      for (const std::string& token : line->values) {
        row.push_back(toDouble(*line, token));
      }
      (line->head == "mean_row" ? meanRows : sigmaRows)
          .push_back(std::move(row));
    } else {
      throw ParseError(line->number,
                       "unexpected '" + line->head + "' in stat LUT");
    }
  }
  throw ParseError(lexer.lineNumber(), "unterminated stat LUT block");
}

StatArc readArc(Lexer& lexer, const std::string& arg, std::size_t lineNo) {
  StatArc arc;
  const std::size_t arrow = arg.find("->");
  if (arrow == std::string::npos) {
    throw ParseError(lineNo, "arc needs 'related -> output'");
  }
  auto trim = [](std::string s) {
    const auto b = s.find_first_not_of(' ');
    const auto e = s.find_last_not_of(' ');
    return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
  };
  arc.relatedPin = trim(arg.substr(0, arrow));
  arc.outputPin = trim(arg.substr(arrow + 2));
  while (auto line = lexer.next()) {
    if (line->closesBlock) return arc;
    if (!line->opensBlock || line->head != "edge") {
      throw ParseError(line->number, "expected edge block in arc");
    }
    if (line->arg == "rise") {
      arc.rise = readStatLut(lexer);
    } else if (line->arg == "fall") {
      arc.fall = readStatLut(lexer);
    } else {
      throw ParseError(line->number, "unknown edge '" + line->arg + "'");
    }
  }
  throw ParseError(lexer.lineNumber(), "unterminated arc block");
}

StatCell readCell(Lexer& lexer, const std::string& name) {
  std::optional<liberty::CellFunction> function;
  double strength = 1.0;
  double area = 0.0;
  std::vector<StatArc> arcs;
  while (auto line = lexer.next()) {
    if (line->closesBlock) {
      if (!function) throw ParseError(line->number, "cell missing function");
      StatCell cell(name, *function, strength, area);
      for (StatArc& arc : arcs) cell.addArc(std::move(arc));
      return cell;
    }
    if (line->opensBlock && line->head == "arc") {
      arcs.push_back(readArc(lexer, line->arg, line->number));
    } else if (line->head == "function") {
      if (line->values.size() != 1) {
        throw ParseError(line->number, "function needs one value");
      }
      for (std::size_t i = 0; i < liberty::kNumCellFunctions; ++i) {
        const auto f = static_cast<liberty::CellFunction>(i);
        if (liberty::toString(f) == line->values[0]) function = f;
      }
      if (!function) {
        throw ParseError(line->number,
                         "unknown function '" + line->values[0] + "'");
      }
    } else if (line->head == "drive_strength") {
      strength = singleValue(*line);
    } else if (line->head == "area") {
      area = singleValue(*line);
    } else {
      throw ParseError(line->number,
                       "unknown cell attribute '" + line->head + "'");
    }
  }
  throw ParseError(lexer.lineNumber(), "unterminated cell block");
}

}  // namespace

void writeStatLibrary(std::ostream& out, const StatLibrary& library) {
  liberty::text::canonicalPrecision(out);
  out << "stat_library (" << library.name() << ") {\n";
  out << "  samples : " << library.sampleCount() << " ;\n";
  for (const StatCell* cell : library.cells()) {
    out << "  cell (" << cell->name() << ") {\n";
    out << "    function : " << liberty::toString(cell->function()) << " ;\n";
    out << "    drive_strength : " << cell->driveStrength() << " ;\n";
    out << "    area : " << cell->area() << " ;\n";
    for (const StatArc& arc : cell->arcs()) {
      out << "    arc (" << arc.relatedPin << " -> " << arc.outputPin
          << ") {\n";
      writeStatLut(out, "rise", arc.rise, "      ");
      writeStatLut(out, "fall", arc.fall, "      ");
      out << "    }\n";
    }
    out << "  }\n";
  }
  out << "}\n";
}

std::string writeStatLibraryToString(const StatLibrary& library) {
  std::ostringstream out;
  writeStatLibrary(out, library);
  return out.str();
}

StatLibrary readStatLibrary(std::istream& in) {
  Lexer lexer(in);
  auto first = lexer.next();
  if (!first || first->head != "stat_library" || !first->opensBlock) {
    throw ParseError(first ? first->number : 0,
                     "expected 'stat_library (name) {'");
  }
  StatLibrary library(first->arg);
  while (auto line = lexer.next()) {
    if (line->closesBlock) return library;
    if (line->head == "samples") {
      library.setSampleCount(static_cast<std::size_t>(singleValue(*line)));
    } else if (line->opensBlock && line->head == "cell") {
      library.addCell(readCell(lexer, line->arg));
    } else {
      throw ParseError(line->number, "unexpected '" + line->head + "'");
    }
  }
  throw ParseError(lexer.lineNumber(), "unterminated stat_library block");
}

StatLibrary readStatLibraryFromString(const std::string& text) {
  std::istringstream in(text);
  return readStatLibrary(in);
}

}  // namespace sct::statlib
