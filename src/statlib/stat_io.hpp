#pragma once
// Text serialization of statistical libraries. The paper's flow produces a
// "statistical library file with identical tables as a nominal library but
// which contains local variation statistics instead" (section IV); this is
// that artifact: a Liberty-style dialect with paired mean/sigma tables,
// round-trippable so tuning can run without re-characterizing.

#include <iosfwd>
#include <string>

#include "liberty/liberty_io.hpp"  // ParseError
#include "statlib/stat_library.hpp"

namespace sct::statlib {

/// Writes the statistical library (deterministic output).
void writeStatLibrary(std::ostream& out, const StatLibrary& library);
[[nodiscard]] std::string writeStatLibraryToString(const StatLibrary& library);

/// Parses a library previously produced by writeStatLibrary. Throws
/// liberty::ParseError on malformed input.
[[nodiscard]] StatLibrary readStatLibrary(std::istream& in);
[[nodiscard]] StatLibrary readStatLibraryFromString(const std::string& text);

}  // namespace sct::statlib
