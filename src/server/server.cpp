#include "server/server.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sct::server {
namespace {

void closeFd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

int listenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  // Replace a stale socket left by a dead daemon; a live daemon would have
  // it open, and binding will still fail cleanly if another one races us.
  std::error_code ec;
  std::filesystem::remove(path, ec);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot listen on " + path + ": " + err);
  }
  return fd;
}

int listenTcpLoopback(std::uint16_t port, std::uint16_t* boundPort) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *boundPort = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)),
                                      service_(config_.service) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (config_.socketPath.empty() && !config_.tcpEnable) {
    throw std::runtime_error("server has no listener configured");
  }
  if (config_.sessionThreads == 0) config_.sessionThreads = 1;
  if (::pipe(wakePipe_) != 0) throw std::runtime_error("pipe() failed");
  if (!config_.socketPath.empty()) unixFd_ = listenUnix(config_.socketPath);
  if (config_.tcpEnable) {
    tcpFd_ = listenTcpLoopback(config_.tcpPort, &boundPort_);
  }
  pool_ = std::make_unique<parallel::ThreadPool>(config_.sessionThreads);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void Server::requestStop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the accept loop's poll(); stop() does the heavy teardown.
  if (wakePipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t rc = ::write(wakePipe_[1], &byte, 1);
  }
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  requestStop();
  if (acceptThread_.joinable()) acceptThread_.join();
  closeListeners();

  // Half-close every open session: a session blocked in readFrame() sees
  // EOF immediately; one mid-request finishes computing and still writes
  // its response through the intact send side. One critical section covers
  // the sweep and the drain wait — sessions deregistering contend only on
  // the wait's release points, exactly as with the former two-phase locking
  // (a session admitted between the phases was already impossible: the
  // accept loop re-checks stopping_ under this mutex).
  {
    const LockGuard lock(sessionsMutex_);
    for (const int fd : sessionFds_) ::shutdown(fd, SHUT_RD);
    while (activeSessions_ != 0) sessionsCv_.wait(sessionsMutex_);
  }
  pool_.reset();  // workers idle by now (every submitted session finished)
  closeFd(wakePipe_[0]);
  closeFd(wakePipe_[1]);
  if (!config_.socketPath.empty()) {
    std::error_code ec;
    std::filesystem::remove(config_.socketPath, ec);
  }
}

void Server::waitForStop() {
  if (wakePipe_[0] >= 0) {
    pollfd pfd{wakePipe_[0], POLLIN, 0};
    while (!stopping_.load(std::memory_order_acquire)) {
      const int rc = ::poll(&pfd, 1, 200);
      if (rc < 0 && errno != EINTR) break;
    }
  }
  stop();
}

void Server::closeListeners() noexcept {
  closeFd(unixFd_);
  closeFd(tcpFd_);
}

void Server::acceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wakePipe_[0], POLLIN, 0};
    if (unixFd_ >= 0) fds[n++] = {unixFd_, POLLIN, 0};
    if (tcpFd_ >= 0) fds[n++] = {tcpFd_, POLLIN, 0};
    const int rc = ::poll(fds, n, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // requestStop() woke us
    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;

      bool admitted = false;
      {
        const LockGuard lock(sessionsMutex_);
        const std::size_t bound =
            config_.sessionThreads + config_.maxQueuedSessions;
        if (activeSessions_ < bound &&
            !stopping_.load(std::memory_order_acquire)) {
          ++activeSessions_;
          sessionFds_.insert(client);
          admitted = true;
        }
      }
      if (!admitted) {
        // Reject at the gate: one canned busy frame, then close. The
        // write is best-effort — a peer that already gave up is fine.
        busyRejects_.fetch_add(1, std::memory_order_relaxed);
        try {
          writeFrame(client, MessageType::kResponse,
                     TuningService::busyResponseBytes());
        } catch (const ProtocolError&) {
        }
        ::close(client);
        continue;
      }
      const auto accepted = TuningService::Clock::now();
      pool_->submit([this, client, accepted] { runSession(client, accepted); });
    }
  }
}

void Server::runSession(int fd, TuningService::Clock::time_point accepted) {
  bool firstFrame = true;
  try {
    while (true) {
      std::optional<Frame> frame = readFrame(fd);
      if (!frame) break;  // clean EOF (client done, or drain half-close)
      // The deadline base: a session's first request waited through the
      // admission queue before this worker even read it, so it counts from
      // the accept; later requests arrive on a live worker and count from
      // their parse.
      const auto received =
          firstFrame ? accepted : TuningService::Clock::now();
      firstFrame = false;
      if (stopping_.load(std::memory_order_acquire) &&
          frame->type != MessageType::kHealthRequest) {
        writeFrame(fd, MessageType::kResponse,
                   TuningService::shuttingDownResponseBytes());
        break;
      }
      const Response response =
          service_.handle(frame->type, frame->payload, received);
      const std::vector<std::byte> bytes = encodeResponse(response);
      writeFrame(fd, MessageType::kResponse, bytes);
      if (frame->type == MessageType::kShutdownRequest) {
        requestStop();
        break;
      }
    }
  } catch (const ProtocolError& e) {
    // Malformed frame or dead peer: answer if the socket still works, then
    // drop the session. The daemon itself never goes down with a client.
    try {
      Response r;
      r.status = Status::kError;
      r.summary = e.what();
      const std::vector<std::byte> bytes = encodeResponse(r);
      writeFrame(fd, MessageType::kResponse, bytes);
    } catch (const ProtocolError&) {
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sctuned: session error: %s\n", e.what());
  }
  // Deregister before close: stop() half-closes every fd still in the set
  // under this mutex, so an fd must leave the set while it is still the
  // session's socket (close first would let the kernel recycle the number
  // into a fresh session and stop() would shut down the wrong peer).
  {
    const LockGuard lock(sessionsMutex_);
    sessionFds_.erase(fd);
    --activeSessions_;
    ::close(fd);
  }
  sessionsCv_.notifyAll();
}

}  // namespace sct::server
