#include "server/protocol.hpp"

#include <cerrno>
#include <cstring>

#ifdef _WIN32
#error "the sctuned protocol layer is POSIX-only"
#else
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "artifact/binary_format.hpp"

namespace sct::server {
namespace {

using artifact::SctbReader;
using artifact::SctbWriter;

/// Every payload is an SCTB container with one section named after the
/// message kind; decoding validates checksums first (FormatError → rethrown
/// as ProtocolError by the callers' catch in the session loop).
constexpr const char* kFlowSection = "flow-req";
constexpr const char* kLintSection = "lint-req";
constexpr const char* kStaSection = "sta-req";
constexpr const char* kScenarioSection = "scenario-req";
constexpr const char* kEvolveSection = "evolve-req";
constexpr const char* kPingSection = "ping-req";
constexpr const char* kResponseSection = "response";

SctbReader readerFor(std::span<const std::byte> bytes, const char* section) {
  try {
    SctbReader reader = SctbReader::fromBytes(bytes);
    if (!reader.hasSection(section)) {
      throw ProtocolError(std::string("payload missing section '") + section +
                          "'");
    }
    return reader;
  } catch (const artifact::FormatError& e) {
    throw ProtocolError(e.what());
  }
}

}  // namespace

bool isRequestType(std::uint32_t raw) noexcept {
  switch (static_cast<MessageType>(raw)) {
    case MessageType::kFlowRequest:
    case MessageType::kLintRequest:
    case MessageType::kStaRequest:
    case MessageType::kHealthRequest:
    case MessageType::kPingRequest:
    case MessageType::kShutdownRequest:
    case MessageType::kScenarioRequest:
    case MessageType::kEvolveRequest:
      return true;
    case MessageType::kResponse:
    default:
      return false;
  }
}

std::vector<std::byte> encodeFlowRequest(const FlowRequest& r) {
  SctbWriter writer;
  writer.beginSection(kFlowSection);
  writer.str(r.job.profile);
  writer.f64(r.job.period);
  writer.str(r.job.method);
  writer.f64(r.job.value);
  writer.u64(r.job.mcCount);
  writer.u64(r.job.mcSeed);
  writer.str(r.job.lintMode);
  writer.str(r.job.workload);
  writer.u64(r.deadlineMillis);
  return writer.finish();
}

FlowRequest decodeFlowRequest(std::span<const std::byte> bytes) {
  const SctbReader reader = readerFor(bytes, kFlowSection);
  auto cursor = reader.section(kFlowSection);
  FlowRequest r;
  try {
    r.job.profile = cursor.str();
    r.job.period = cursor.f64();
    r.job.method = cursor.str();
    r.job.value = cursor.f64();
    r.job.mcCount = cursor.u64();
    r.job.mcSeed = cursor.u64();
    r.job.lintMode = cursor.str();
    r.job.workload = cursor.str();
    r.deadlineMillis = cursor.u64();
  } catch (const artifact::FormatError& e) {
    throw ProtocolError(e.what());
  }
  return r;
}

std::vector<std::byte> encodeLintRequest(const LintRequest& r) {
  SctbWriter writer;
  writer.beginSection(kLintSection);
  writer.str(r.artifactType);
  writer.str(r.content);
  writer.boolean(r.json);
  writer.u64(r.deadlineMillis);
  return writer.finish();
}

LintRequest decodeLintRequest(std::span<const std::byte> bytes) {
  const SctbReader reader = readerFor(bytes, kLintSection);
  auto cursor = reader.section(kLintSection);
  LintRequest r;
  try {
    r.artifactType = cursor.str();
    r.content = cursor.str();
    r.json = cursor.boolean();
    r.deadlineMillis = cursor.u64();
  } catch (const artifact::FormatError& e) {
    throw ProtocolError(e.what());
  }
  return r;
}

std::vector<std::byte> encodeStaRequest(const StaRequest& r) {
  SctbWriter writer;
  writer.beginSection(kStaSection);
  writer.str(r.libraryText);
  writer.str(r.netlistText);
  writer.f64(r.period);
  writer.u64(r.deadlineMillis);
  return writer.finish();
}

StaRequest decodeStaRequest(std::span<const std::byte> bytes) {
  const SctbReader reader = readerFor(bytes, kStaSection);
  auto cursor = reader.section(kStaSection);
  StaRequest r;
  try {
    r.libraryText = cursor.str();
    r.netlistText = cursor.str();
    r.period = cursor.f64();
    r.deadlineMillis = cursor.u64();
  } catch (const artifact::FormatError& e) {
    throw ProtocolError(e.what());
  }
  return r;
}

std::vector<std::byte> encodeScenarioRequest(const ScenarioRequest& r) {
  SctbWriter writer;
  writer.beginSection(kScenarioSection);
  // Flow-job fields in flow-request order, then the scenario extensions.
  writer.str(r.job.profile);
  writer.f64(r.job.period);
  writer.str(r.job.method);
  writer.f64(r.job.value);
  writer.u64(r.job.mcCount);
  writer.u64(r.job.mcSeed);
  writer.str(r.job.lintMode);
  writer.str(r.job.workload);
  writer.u64(r.periods.size());
  for (const double p : r.periods) writer.f64(p);
  writer.str(r.scenarios);
  writer.f64(r.rangeMin);
  writer.f64(r.rangeMax);
  writer.f64(r.step);
  writer.f64(r.areaPerElement);
  writer.u64(r.mcTrials);
  writer.u64(r.mcSeed);
  writer.boolean(r.json);
  writer.u64(r.deadlineMillis);
  return writer.finish();
}

ScenarioRequest decodeScenarioRequest(std::span<const std::byte> bytes) {
  const SctbReader reader = readerFor(bytes, kScenarioSection);
  auto cursor = reader.section(kScenarioSection);
  ScenarioRequest r;
  try {
    r.job.profile = cursor.str();
    r.job.period = cursor.f64();
    r.job.method = cursor.str();
    r.job.value = cursor.f64();
    r.job.mcCount = cursor.u64();
    r.job.mcSeed = cursor.u64();
    r.job.lintMode = cursor.str();
    r.job.workload = cursor.str();
    const std::uint64_t count = cursor.u64();
    if (count > 64) throw ProtocolError("unreasonable scenario period count");
    r.periods.clear();
    r.periods.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) r.periods.push_back(cursor.f64());
    r.scenarios = cursor.str();
    r.rangeMin = cursor.f64();
    r.rangeMax = cursor.f64();
    r.step = cursor.f64();
    r.areaPerElement = cursor.f64();
    r.mcTrials = cursor.u64();
    r.mcSeed = cursor.u64();
    r.json = cursor.boolean();
    r.deadlineMillis = cursor.u64();
  } catch (const artifact::FormatError& e) {
    throw ProtocolError(e.what());
  }
  return r;
}

std::vector<std::byte> encodeEvolveRequest(const EvolveRequest& r) {
  SctbWriter writer;
  writer.beginSection(kEvolveSection);
  // Flow-job fields in flow-request order, then the evolve parameters.
  writer.str(r.job.profile);
  writer.f64(r.job.period);
  writer.str(r.job.method);
  writer.f64(r.job.value);
  writer.u64(r.job.mcCount);
  writer.u64(r.job.mcSeed);
  writer.str(r.job.lintMode);
  writer.str(r.job.workload);
  writer.u64(r.params.population);
  writer.u64(r.params.generations);
  writer.str(r.params.objectives);
  writer.f64(r.params.geneMin);
  writer.f64(r.params.geneMax);
  writer.u64(r.params.seed);
  writer.boolean(r.json);
  writer.u64(r.deadlineMillis);
  return writer.finish();
}

EvolveRequest decodeEvolveRequest(std::span<const std::byte> bytes) {
  const SctbReader reader = readerFor(bytes, kEvolveSection);
  auto cursor = reader.section(kEvolveSection);
  EvolveRequest r;
  try {
    r.job.profile = cursor.str();
    r.job.period = cursor.f64();
    r.job.method = cursor.str();
    r.job.value = cursor.f64();
    r.job.mcCount = cursor.u64();
    r.job.mcSeed = cursor.u64();
    r.job.lintMode = cursor.str();
    r.job.workload = cursor.str();
    r.params.population = static_cast<std::size_t>(cursor.u64());
    r.params.generations = static_cast<std::size_t>(cursor.u64());
    r.params.objectives = cursor.str();
    r.params.geneMin = cursor.f64();
    r.params.geneMax = cursor.f64();
    r.params.seed = cursor.u64();
    r.json = cursor.boolean();
    r.deadlineMillis = cursor.u64();
  } catch (const artifact::FormatError& e) {
    throw ProtocolError(e.what());
  }
  return r;
}

std::vector<std::byte> encodePingRequest(const PingRequest& r) {
  SctbWriter writer;
  writer.beginSection(kPingSection);
  writer.str(r.echo);
  writer.u64(r.sleepMillis);
  writer.u64(r.deadlineMillis);
  return writer.finish();
}

PingRequest decodePingRequest(std::span<const std::byte> bytes) {
  const SctbReader reader = readerFor(bytes, kPingSection);
  auto cursor = reader.section(kPingSection);
  PingRequest r;
  try {
    r.echo = cursor.str();
    r.sleepMillis = cursor.u64();
    r.deadlineMillis = cursor.u64();
  } catch (const artifact::FormatError& e) {
    throw ProtocolError(e.what());
  }
  return r;
}

std::vector<std::byte> encodeResponse(const Response& r) {
  SctbWriter writer;
  writer.beginSection(kResponseSection);
  writer.u8(static_cast<std::uint8_t>(r.status));
  writer.str(r.summary);
  writer.str(r.body);
  return writer.finish();
}

Response decodeResponse(std::span<const std::byte> bytes) {
  const SctbReader reader = readerFor(bytes, kResponseSection);
  auto cursor = reader.section(kResponseSection);
  Response r;
  try {
    const std::uint8_t raw = cursor.u8();
    if (raw > static_cast<std::uint8_t>(Status::kShuttingDown)) {
      throw ProtocolError("unknown response status");
    }
    r.status = static_cast<Status>(raw);
    r.summary = cursor.str();
    r.body = cursor.str();
  } catch (const artifact::FormatError& e) {
    throw ProtocolError(e.what());
  }
  return r;
}

// ---- frame IO ------------------------------------------------------------

namespace {

/// Reads exactly n bytes. Returns the byte count actually read: n on
/// success, less when the peer closed mid-read (0 when it closed cleanly
/// before the first byte). Throws ProtocolError on hard socket errors.
std::size_t readFully(int fd, std::byte* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd, out + got, n - got);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) return got;  // EOF
    if (errno == EINTR) continue;
    throw ProtocolError(std::string("read failed: ") + std::strerror(errno));
  }
  return got;
}

std::uint32_t loadU32(const std::byte* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t loadU64(const std::byte* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::optional<Frame> readFrame(int fd) {
  std::byte header[kFrameHeaderBytes];
  const std::size_t got = readFully(fd, header, sizeof header);
  if (got == 0) return std::nullopt;  // clean EOF between frames
  if (got < sizeof header) throw ProtocolError("truncated frame header");
  if (std::memcmp(header, kFrameMagic, sizeof kFrameMagic) != 0) {
    throw ProtocolError("bad frame magic");
  }
  const std::uint32_t rawType = loadU32(header + 4);
  const std::uint64_t payloadSize = loadU64(header + 8);
  if (payloadSize > kMaxPayloadBytes) {
    throw ProtocolError("frame payload exceeds " +
                        std::to_string(kMaxPayloadBytes) + " bytes");
  }
  if (!isRequestType(rawType) &&
      static_cast<MessageType>(rawType) != MessageType::kResponse) {
    throw ProtocolError("unknown message type " + std::to_string(rawType));
  }
  Frame frame;
  frame.type = static_cast<MessageType>(rawType);
  frame.payload.resize(static_cast<std::size_t>(payloadSize));
  if (payloadSize > 0 &&
      readFully(fd, frame.payload.data(), frame.payload.size()) !=
          frame.payload.size()) {
    throw ProtocolError("connection closed mid-payload");
  }
  return frame;
}

void writeFrame(int fd, MessageType type, std::span<const std::byte> payload) {
  std::byte header[kFrameHeaderBytes];
  std::memcpy(header, kFrameMagic, sizeof kFrameMagic);
  const std::uint32_t rawType = static_cast<std::uint32_t>(type);
  std::memcpy(header + 4, &rawType, sizeof rawType);
  const std::uint64_t payloadSize = payload.size();
  std::memcpy(header + 8, &payloadSize, sizeof payloadSize);

  // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE →
  // ProtocolError, never as a process-killing SIGPIPE (the in-process test
  // servers and the bench run without the daemon's SIG_IGN).
  const auto writeAll = [fd](const std::byte* data, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
      if (rc > 0) {
        sent += static_cast<std::size_t>(rc);
        continue;
      }
      if (rc < 0 && errno == EINTR) continue;
      throw ProtocolError(std::string("write failed: ") +
                          std::strerror(errno));
    }
  };
  writeAll(header, sizeof header);
  if (!payload.empty()) writeAll(payload.data(), payload.size());
}

}  // namespace sct::server
