#pragma once
// SCTP — the sctuned daemon's wire protocol (DESIGN.md §14). Every message
// is one length-prefixed frame:
//
//   offset 0   char[4]  magic "SCTP"
//          4   u32      message type (MessageType, little-endian)
//          8   u64      payload byte count (little-endian)
//         16   payload  SCTB container (or empty)
//
// Payloads reuse the SCTB artifact container (src/artifact): the same
// codecs, checksums and version gate that protect the on-disk cache protect
// the wire. A frame with a bad magic, an unknown type, or a payload above
// kMaxPayloadBytes is a protocol error — the server answers kStatusError
// (when it still can) and drops the connection; it never crashes and never
// trusts a byte past validation. Truncated frames (peer died mid-send) read
// as clean EOFs or short reads and close the session.
//
// Responses carry a status + summary + body. Response *bytes are a pure
// function of the request*: no timestamps, no server identity, no
// cached/coalesced markers — so a response served from the daemon's response
// cache is byte-identical to a freshly computed one, and a flow response
// body is byte-identical to the CLI's `flow --report` file (both render
// through core::runFlowJob).

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/flow_job.hpp"
#include "evo/params.hpp"

namespace sct::server {

inline constexpr char kFrameMagic[4] = {'S', 'C', 'T', 'P'};
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Upper bound on a single frame payload; anything larger is an attack or a
/// bug, not a workload (a full flow report is a few hundred KB).
inline constexpr std::uint64_t kMaxPayloadBytes = 64ull << 20;

enum class MessageType : std::uint32_t {
  kFlowRequest = 1,
  kLintRequest = 2,
  kStaRequest = 3,
  kHealthRequest = 4,
  kPingRequest = 5,
  kShutdownRequest = 6,
  kScenarioRequest = 7,
  kEvolveRequest = 8,
  kResponse = 100,
};

/// True for the types a client may send.
[[nodiscard]] bool isRequestType(std::uint32_t raw) noexcept;

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,    ///< request failed (parse error, unknown method, ...)
  kBusy = 2,     ///< admission control rejected the session/request
  kTimeout = 3,  ///< the request's deadline expired before compute started
  kShuttingDown = 4,
};

/// Raised on malformed frames and payloads (the recv path catches it).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& message)
      : std::runtime_error("SCTP: " + message) {}
};

// ---- requests ------------------------------------------------------------

/// Runs the full tuning flow (characterize → stat → tune → synth → measure)
/// and returns the deterministic "flow-report v1" text as the body.
struct FlowRequest {
  core::FlowJob job;
  std::uint64_t deadlineMillis = 0;  ///< 0 = no deadline
};

/// Lints one text artifact with the full rule set; body is the text (or
/// JSON) lint report.
struct LintRequest {
  std::string artifactType;  ///< lib | stat | netlist | constraints
  std::string content;       ///< the artifact text itself
  bool json = false;         ///< render the report as JSON instead of text
  std::uint64_t deadlineMillis = 0;
};

/// Static timing of a netlist against a library; body is the full timing
/// report (sta::writeTimingReport).
struct StaRequest {
  std::string libraryText;
  std::string netlistText;
  double period = 0.0;
  std::uint64_t deadlineMillis = 0;
};

/// Runs the post-silicon scenario matrix (postsi::runScenarioJob); body is
/// the deterministic "scenario-report v1" text, or the JSON rendering when
/// `json` is set — both byte-identical to the CLI's output for the same job.
struct ScenarioRequest {
  core::FlowJob job;            ///< flow part (period field unused)
  std::vector<double> periods;  ///< explicit clock periods [ns]
  std::string scenarios = "tuning,clock,buffers";
  double rangeMin = 0.0;  ///< tuning-element spec, flattened for the wire
  double rangeMax = 0.3;
  double step = 0.05;
  double areaPerElement = 2.0;
  std::uint64_t mcTrials = 0;  ///< 0 = profile default
  std::uint64_t mcSeed = 2014;
  bool json = false;
  std::uint64_t deadlineMillis = 0;
};

/// Runs the multi-objective evolutionary window tuner (evo::runEvolveJob);
/// body is the deterministic "evolve-report v1" text, or the JSON rendering
/// when `json` is set — both byte-identical to `sctune evolve` for the same
/// job.
struct EvolveRequest {
  core::FlowJob job;  ///< profile/workload/period/mc/lint (method unused)
  evo::EvolveParams params;
  bool json = false;
  std::uint64_t deadlineMillis = 0;
};

/// Diagnostic echo; sleeps for sleepMillis on the session worker before
/// answering (load/deadline/admission testing without burning CPU).
struct PingRequest {
  std::string echo;
  std::uint64_t sleepMillis = 0;
  std::uint64_t deadlineMillis = 0;
};

// kHealthRequest and kShutdownRequest carry empty payloads.

struct Response {
  Status status = Status::kError;
  std::string summary;  ///< one human line ("flow: MET | ...", error text)
  std::string body;     ///< full report / JSON document; may be empty
};

// ---- payload codecs (SCTB containers) ------------------------------------

[[nodiscard]] std::vector<std::byte> encodeFlowRequest(const FlowRequest& r);
[[nodiscard]] FlowRequest decodeFlowRequest(std::span<const std::byte> bytes);
[[nodiscard]] std::vector<std::byte> encodeLintRequest(const LintRequest& r);
[[nodiscard]] LintRequest decodeLintRequest(std::span<const std::byte> bytes);
[[nodiscard]] std::vector<std::byte> encodeStaRequest(const StaRequest& r);
[[nodiscard]] StaRequest decodeStaRequest(std::span<const std::byte> bytes);
[[nodiscard]] std::vector<std::byte> encodeScenarioRequest(
    const ScenarioRequest& r);
[[nodiscard]] ScenarioRequest decodeScenarioRequest(
    std::span<const std::byte> bytes);
[[nodiscard]] std::vector<std::byte> encodeEvolveRequest(
    const EvolveRequest& r);
[[nodiscard]] EvolveRequest decodeEvolveRequest(
    std::span<const std::byte> bytes);
[[nodiscard]] std::vector<std::byte> encodePingRequest(const PingRequest& r);
[[nodiscard]] PingRequest decodePingRequest(std::span<const std::byte> bytes);
[[nodiscard]] std::vector<std::byte> encodeResponse(const Response& r);
[[nodiscard]] Response decodeResponse(std::span<const std::byte> bytes);

// ---- frame IO over a connected socket ------------------------------------

/// One parsed incoming frame.
struct Frame {
  MessageType type = MessageType::kResponse;
  std::vector<std::byte> payload;
};

/// Blocking read of one frame. Returns nullopt on clean EOF before any
/// header byte; throws ProtocolError on bad magic / unknown type / oversized
/// payload / connection lost mid-frame. Retries EINTR.
[[nodiscard]] std::optional<Frame> readFrame(int fd);

/// Blocking write of one frame (header + payload). Throws ProtocolError
/// when the peer is gone. Retries EINTR and short writes.
void writeFrame(int fd, MessageType type, std::span<const std::byte> payload);

}  // namespace sct::server
