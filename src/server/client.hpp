#pragma once
// Blocking SCTP client used by `sctune client ...`, the tests and the load
// bench. One Client is one persistent connection; call() runs one
// request/response round trip. Not thread-safe — use one Client per thread
// (the daemon multiplexes them server-side).

#include <cstdint>
#include <span>
#include <string>

#include "server/protocol.hpp"

namespace sct::server {

class Client {
 public:
  /// Connects to a Unix-domain socket; throws std::runtime_error on
  /// failure (daemon not running, wrong path, permissions).
  [[nodiscard]] static Client connectUnix(const std::string& socketPath);
  /// Connects to 127.0.0.1:port.
  [[nodiscard]] static Client connectTcp(std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One round trip. Throws ProtocolError on a malformed reply or a dead
  /// connection (including a server that closed mid-drain).
  [[nodiscard]] Response call(MessageType type,
                              std::span<const std::byte> payload);

  // Typed conveniences.
  [[nodiscard]] Response flow(const FlowRequest& request);
  [[nodiscard]] Response scenario(const ScenarioRequest& request);
  [[nodiscard]] Response evolve(const EvolveRequest& request);
  [[nodiscard]] Response lint(const LintRequest& request);
  [[nodiscard]] Response sta(const StaRequest& request);
  [[nodiscard]] Response ping(const PingRequest& request);
  [[nodiscard]] Response health();
  [[nodiscard]] Response shutdown();

  /// Raw socket, for tests that need to inject malformed bytes.
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace sct::server
