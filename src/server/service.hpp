#pragma once
// Request execution behind the sctuned daemon (DESIGN.md §14): one
// TuningService instance is shared by every session. It owns the shared
// cache tiers —
//
//   response cache   memory-resident, keyed by the digest of the request's
//                    semantic fields (deadline excluded); a hit re-serves
//                    the exact encoded response bytes
//   stage caches     the on-disk ArtifactStore plus the in-memory tier,
//                    injected into each request's TuningFlow, so different
//                    requests still share characterization/stat/tune/synth
//                    stage artifacts
//
// and a request-level SingleFlight: K concurrent identical requests compute
// once — one leader runs the flow, the waiters block on the key and then
// serve the leader's published response. Responses are a pure function of
// the request, so cached, coalesced and freshly computed responses are all
// byte-identical.
//
// Thread-safety: handle() may be called from any number of session threads
// concurrently. The caches and single-flight table are internally locked;
// flow stages additionally dedup through the flow's own stage-level
// single-flight.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "artifact/mem_cache.hpp"
#include "artifact/single_flight.hpp"
#include "artifact/store.hpp"
#include "server/protocol.hpp"

namespace sct::server {

struct ServiceConfig {
  /// Root of the shared on-disk artifact store; empty = no disk tier (the
  /// in-memory tiers still work).
  std::string cacheDir;
  /// Byte budget of the shared in-memory cache (responses + stage
  /// artifacts; both live in one LRU so hot responses can evict cold stage
  /// artifacts and vice versa). 0 disables memory caching entirely.
  std::uint64_t memCacheBytes = 256ull << 20;
};

class TuningService {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TuningService(const ServiceConfig& config);
  ~TuningService();
  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Executes one request; `received` is the base of the request's
  /// deadline — the accept time for a session's first request (so time
  /// spent in the admission queue counts against it), the frame parse time
  /// for later requests on the same connection. A deadline rejects
  /// requests still waiting — in the admission queue or blocked behind an
  /// identical in-flight computation — when it expires; it does not
  /// preempt compute that already started. Never throws: every failure
  /// becomes a Status::kError response.
  [[nodiscard]] Response handle(MessageType type,
                                std::span<const std::byte> payload,
                                Clock::time_point received);

  /// Pre-encoded response bytes for the fast paths (busy rejection at the
  /// accept gate must not allocate much or block on caches).
  [[nodiscard]] static std::span<const std::byte> busyResponseBytes();
  [[nodiscard]] static std::span<const std::byte> shuttingDownResponseBytes();

  [[nodiscard]] const artifact::MemoryArtifactCache& memCache() const noexcept {
    return mem_;
  }
  [[nodiscard]] artifact::ArtifactStore* store() noexcept {
    return store_.get();
  }

  /// The health body: sct-metrics-v1 JSON of the global metrics snapshot
  /// (cache tier gauges refreshed first).
  [[nodiscard]] std::string healthJson();

 private:
  Response handleFlow(const FlowRequest& request, Clock::time_point received);
  Response handleScenario(const ScenarioRequest& request,
                          Clock::time_point received);
  Response handleEvolve(const EvolveRequest& request,
                        Clock::time_point received);
  Response handleLint(const LintRequest& request, Clock::time_point received);
  Response handleSta(const StaRequest& request, Clock::time_point received);
  Response handlePing(const PingRequest& request, Clock::time_point received);

  /// Shared cache + single-flight harness around one cacheable request:
  /// probe by digest, elect a leader, compute, publish, re-serve. A waiter
  /// whose `deadline` passes while blocked behind the leader answers
  /// kTimeout instead of computing.
  Response cachedResponse(const artifact::Digest& key,
                          Clock::time_point deadline,
                          const std::function<Response()>& compute);

  /// True when a nonzero deadline measured from `received` already passed.
  [[nodiscard]] static bool deadlineExpired(std::uint64_t deadlineMillis,
                                            Clock::time_point received);

  /// Absolute deadline for `flights_.lock`; max() when deadlineMillis is 0.
  [[nodiscard]] static Clock::time_point deadlinePoint(
      std::uint64_t deadlineMillis, Clock::time_point received);

  std::unique_ptr<artifact::ArtifactStore> store_;  ///< null when no disk tier
  artifact::MemoryArtifactCache mem_;
  artifact::SingleFlight flights_;
};

}  // namespace sct::server
