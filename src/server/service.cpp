#include "server/service.hpp"

#include <exception>
#include <optional>
#include <sstream>
#include <thread>

#include "artifact/hash.hpp"
#include "lint/engine.hpp"
#include "lint/report_io.hpp"
#include "liberty/liberty_io.hpp"
#include "netlist/verilog_io.hpp"
#include "evo/tuner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "postsi/scenario.hpp"
#include "sta/report.hpp"
#include "sta/sta.hpp"
#include "statlib/stat_io.hpp"
#include "tuning/constraints_io.hpp"

namespace sct::server {
namespace {

/// Find-or-create is mutex-guarded inside the registry, but resolving the
/// instruments once keeps the per-request path to pure atomic increments.
struct ServiceMetrics {
  obs::Counter& requests;
  obs::Counter& responsesOk;
  obs::Counter& responsesError;
  obs::Counter& responsesTimeout;
  obs::Counter& cacheHits;
  obs::Counter& cacheMisses;
  obs::Counter& singleflightLeader;
  obs::Counter& singleflightCoalesced;

  static ServiceMetrics& get() {
    static ServiceMetrics m{
        obs::MetricsRegistry::global().counter("server.requests"),
        obs::MetricsRegistry::global().counter("server.responses.ok"),
        obs::MetricsRegistry::global().counter("server.responses.error"),
        obs::MetricsRegistry::global().counter("server.responses.timeout"),
        obs::MetricsRegistry::global().counter("server.cache.hits"),
        obs::MetricsRegistry::global().counter("server.cache.misses"),
        obs::MetricsRegistry::global().counter("server.singleflight.leader"),
        obs::MetricsRegistry::global().counter(
            "server.singleflight.coalesced"),
    };
    return m;
  }
};

/// Domain separation tags so request digests can never collide with each
/// other or with flow stage keys (which hash configuration structs).
constexpr const char* kFlowTag = "sctp-flow-v1";
constexpr const char* kScenarioTag = "sctp-scenario-v1";
constexpr const char* kEvolveTag = "sctp-evolve-v1";
constexpr const char* kLintTag = "sctp-lint-v1";
constexpr const char* kStaTag = "sctp-sta-v1";

artifact::Digest flowDigest(const FlowRequest& r) {
  artifact::Hasher h;
  h.str(kFlowTag)
      .str(r.job.profile)
      .str(r.job.workload)
      .f64(r.job.period)
      .str(r.job.method)
      .f64(r.job.value)
      .u64(r.job.mcCount)
      .u64(r.job.mcSeed)
      .str(r.job.lintMode);
  return h.digest();
}

artifact::Digest scenarioDigest(const ScenarioRequest& r) {
  artifact::Hasher h;
  h.str(kScenarioTag)
      .str(r.job.profile)
      .str(r.job.workload)
      .str(r.job.method)
      .f64(r.job.value)
      .u64(r.job.mcCount)
      .u64(r.job.mcSeed)
      .str(r.job.lintMode);
  h.u64(r.periods.size());
  for (const double p : r.periods) h.f64(p);
  h.str(r.scenarios)
      .f64(r.rangeMin)
      .f64(r.rangeMax)
      .f64(r.step)
      .f64(r.areaPerElement)
      .u64(r.mcTrials)
      .u64(r.mcSeed)
      .u8(r.json ? 1 : 0);
  return h.digest();
}

artifact::Digest evolveDigest(const EvolveRequest& r) {
  artifact::Hasher h;
  h.str(kEvolveTag)
      .str(r.job.profile)
      .str(r.job.workload)
      .f64(r.job.period)
      .u64(r.job.mcCount)
      .u64(r.job.mcSeed)
      .str(r.job.lintMode)
      .u64(r.params.population)
      .u64(r.params.generations)
      .str(r.params.objectives)
      .f64(r.params.geneMin)
      .f64(r.params.geneMax)
      .u64(r.params.seed)
      .u8(r.json ? 1 : 0);
  return h.digest();
}

artifact::Digest lintDigest(const LintRequest& r) {
  artifact::Hasher h;
  h.str(kLintTag)
      .str(r.artifactType)
      .str(r.content)
      .u8(r.json ? 1 : 0)
      .u32(lint::kRulePackVersion);
  return h.digest();
}

artifact::Digest staDigest(const StaRequest& r) {
  artifact::Hasher h;
  h.str(kStaTag).str(r.libraryText).str(r.netlistText).f64(r.period);
  return h.digest();
}

Response errorResponse(const std::string& message) {
  Response r;
  r.status = Status::kError;
  r.summary = message;
  return r;
}

Response timeoutResponse(const char* what) {
  Response r;
  r.status = Status::kTimeout;
  r.summary = what;
  return r;
}

std::vector<std::byte> encodeStatic(Status status, const char* summary) {
  Response r;
  r.status = status;
  r.summary = summary;
  return encodeResponse(r);
}

}  // namespace

TuningService::TuningService(const ServiceConfig& config)
    : mem_(config.memCacheBytes) {
  if (!config.cacheDir.empty()) {
    store_ = std::make_unique<artifact::ArtifactStore>(config.cacheDir);
  }
}

TuningService::~TuningService() = default;

std::span<const std::byte> TuningService::busyResponseBytes() {
  static const std::vector<std::byte> bytes =
      encodeStatic(Status::kBusy, "server at capacity, retry later");
  return bytes;
}

std::span<const std::byte> TuningService::shuttingDownResponseBytes() {
  static const std::vector<std::byte> bytes =
      encodeStatic(Status::kShuttingDown, "server is shutting down");
  return bytes;
}

bool TuningService::deadlineExpired(std::uint64_t deadlineMillis,
                                    Clock::time_point received) {
  if (deadlineMillis == 0) return false;
  return Clock::now() >= received + std::chrono::milliseconds(deadlineMillis);
}

TuningService::Clock::time_point TuningService::deadlinePoint(
    std::uint64_t deadlineMillis, Clock::time_point received) {
  if (deadlineMillis == 0) return Clock::time_point::max();
  return received + std::chrono::milliseconds(deadlineMillis);
}

Response TuningService::handle(MessageType type,
                               std::span<const std::byte> payload,
                               Clock::time_point received) {
  ServiceMetrics::get().requests.inc();
  Response response;
  try {
    switch (type) {
      case MessageType::kFlowRequest:
        response = handleFlow(decodeFlowRequest(payload), received);
        break;
      case MessageType::kScenarioRequest:
        response = handleScenario(decodeScenarioRequest(payload), received);
        break;
      case MessageType::kEvolveRequest:
        response = handleEvolve(decodeEvolveRequest(payload), received);
        break;
      case MessageType::kLintRequest:
        response = handleLint(decodeLintRequest(payload), received);
        break;
      case MessageType::kStaRequest:
        response = handleSta(decodeStaRequest(payload), received);
        break;
      case MessageType::kPingRequest:
        response = handlePing(decodePingRequest(payload), received);
        break;
      case MessageType::kHealthRequest:
        response.status = Status::kOk;
        response.summary = "ok";
        response.body = healthJson();
        break;
      case MessageType::kShutdownRequest:
        // The server layer watches for this type and begins draining; the
        // service only acknowledges.
        response.status = Status::kOk;
        response.summary = "shutting down";
        break;
      case MessageType::kResponse:
      default:
        response = errorResponse("not a request type");
        break;
    }
  } catch (const std::exception& e) {
    response = errorResponse(e.what());
  } catch (...) {
    response = errorResponse("unknown error");
  }
  switch (response.status) {
    case Status::kOk:
      ServiceMetrics::get().responsesOk.inc();
      break;
    case Status::kTimeout:
      ServiceMetrics::get().responsesTimeout.inc();
      break;
    default:
      ServiceMetrics::get().responsesError.inc();
      break;
  }
  return response;
}

Response TuningService::cachedResponse(
    const artifact::Digest& key, Clock::time_point deadline,
    const std::function<Response()>& compute) {
  const auto probe = [&]() -> std::optional<Response> {
    if (const auto reader = mem_.get(key)) {
      ServiceMetrics::get().cacheHits.inc();
      return decodeResponse(reader->rawBytes());
    }
    return std::nullopt;
  };

  if (auto hit = probe()) return *hit;
  ServiceMetrics::get().cacheMisses.inc();

  // Exactly one session computes a given key at a time; the others block
  // here and then serve the leader's published bytes. A leader that failed
  // (kError response, not cached) hands leadership to the next waiter.
  auto guard = flights_.lock(key, deadline);
  if (!guard) {
    return timeoutResponse(
        "deadline expired waiting for an identical in-flight request");
  }
  if (guard->waited()) {
    ServiceMetrics::get().singleflightCoalesced.inc();
    if (auto hit = probe()) return *hit;
  }
  ServiceMetrics::get().singleflightLeader.inc();

  Response response = compute();
  if (response.status == Status::kOk) {
    // Publish the encoded bytes; later hits decode this exact container,
    // so cached and fresh responses are byte-identical.
    const std::vector<std::byte> bytes = encodeResponse(response);
    mem_.put(key, std::make_shared<const artifact::SctbReader>(
                      artifact::SctbReader::fromBytes(bytes)));
  }
  return response;
}

Response TuningService::handleFlow(const FlowRequest& request,
                                   Clock::time_point received) {
  SCT_TRACE_SPAN("server.flow");
  if (deadlineExpired(request.deadlineMillis, received)) {
    return timeoutResponse("deadline expired before compute started");
  }
  return cachedResponse(flowDigest(request),
                        deadlinePoint(request.deadlineMillis, received), [&] {
    core::FlowConfig config = core::makeFlowConfig(request.job);
    config.sharedStore = store_.get();
    config.sharedMemCache = &mem_;
    core::TuningFlow flow(std::move(config));
    const core::FlowJobResult result = core::runFlowJob(flow, request.job);
    Response r;
    r.status = Status::kOk;
    r.summary = result.summary;
    r.body = result.report;
    return r;
  });
}

Response TuningService::handleScenario(const ScenarioRequest& request,
                                       Clock::time_point received) {
  SCT_TRACE_SPAN("server.scenario");
  if (deadlineExpired(request.deadlineMillis, received)) {
    return timeoutResponse("deadline expired before compute started");
  }
  return cachedResponse(scenarioDigest(request),
                        deadlinePoint(request.deadlineMillis, received), [&] {
    core::FlowConfig config = core::makeFlowConfig(request.job);
    config.sharedStore = store_.get();
    config.sharedMemCache = &mem_;
    core::TuningFlow flow(std::move(config));
    postsi::ScenarioJob job;
    job.flow = request.job;
    job.periods = request.periods;
    job.scenarios = request.scenarios;
    job.element = clocktree::TuningElementSpec{
        request.rangeMin, request.rangeMax, request.step,
        request.areaPerElement};
    job.mcTrials = request.mcTrials;
    job.mcSeed = request.mcSeed;
    const postsi::ScenarioRunResult result = postsi::runScenarioJob(flow, job);
    Response r;
    r.status = Status::kOk;
    r.summary = result.summary;
    r.body = request.json ? result.json : result.report;
    return r;
  });
}

Response TuningService::handleEvolve(const EvolveRequest& request,
                                     Clock::time_point received) {
  SCT_TRACE_SPAN("server.evolve");
  if (deadlineExpired(request.deadlineMillis, received)) {
    return timeoutResponse("deadline expired before compute started");
  }
  return cachedResponse(evolveDigest(request),
                        deadlinePoint(request.deadlineMillis, received), [&] {
    core::FlowConfig config = core::makeFlowConfig(request.job);
    config.sharedStore = store_.get();
    config.sharedMemCache = &mem_;
    core::TuningFlow flow(std::move(config));
    evo::EvolveJob job;
    job.flow = request.job;
    job.params = request.params;
    const evo::EvolveRunResult result = evo::runEvolveJob(flow, job);
    Response r;
    r.status = Status::kOk;
    r.summary = result.summary;
    r.body = request.json ? result.json : result.report;
    return r;
  });
}

Response TuningService::handleLint(const LintRequest& request,
                                   Clock::time_point received) {
  SCT_TRACE_SPAN("server.lint");
  if (deadlineExpired(request.deadlineMillis, received)) {
    return timeoutResponse("deadline expired before compute started");
  }
  return cachedResponse(lintDigest(request),
                        deadlinePoint(request.deadlineMillis, received), [&] {
    std::optional<liberty::Library> library;
    std::optional<statlib::StatLibrary> stat;
    std::optional<netlist::Design> design;
    std::optional<tuning::LibraryConstraints> constraints;
    lint::LintSubject subject;
    if (request.artifactType == "lib") {
      library.emplace(liberty::readLibraryFromString(request.content));
      subject.library = &*library;
    } else if (request.artifactType == "stat") {
      stat.emplace(statlib::readStatLibraryFromString(request.content));
      subject.statLibrary = &*stat;
    } else if (request.artifactType == "netlist") {
      design.emplace(netlist::readVerilogFromString(request.content, nullptr));
      subject.design = &*design;
    } else if (request.artifactType == "constraints") {
      constraints.emplace(tuning::readConstraintsFromString(request.content));
      subject.constraints = &*constraints;
    } else {
      return errorResponse("unknown artifact type '" + request.artifactType +
                           "' (lib|stat|netlist|constraints)");
    }
    const lint::LintEngine engine = lint::LintEngine::withAllRules();
    const lint::LintReport report = engine.run(subject);
    Response r;
    r.status = Status::kOk;
    r.summary = report.summary();
    r.body = request.json ? lint::writeJsonToString(report)
                          : lint::writeTextToString(report);
    return r;
  });
}

Response TuningService::handleSta(const StaRequest& request,
                                  Clock::time_point received) {
  SCT_TRACE_SPAN("server.sta");
  if (deadlineExpired(request.deadlineMillis, received)) {
    return timeoutResponse("deadline expired before compute started");
  }
  return cachedResponse(staDigest(request),
                        deadlinePoint(request.deadlineMillis, received), [&] {
    const liberty::Library library =
        liberty::readLibraryFromString(request.libraryText);
    const netlist::Design design =
        netlist::readVerilogFromString(request.netlistText, &library);
    sta::ClockSpec clock;
    clock.period = request.period;
    sta::TimingAnalyzer analyzer(design, library, clock);
    if (!analyzer.analyze()) {
      return errorResponse("timing analysis failed (combinational cycle)");
    }
    Response r;
    r.status = Status::kOk;
    std::ostringstream summary;
    summary << "sta: " << design.name() << " wns "
            << (analyzer.met() ? "met" : "violated");
    r.summary = summary.str();
    r.body = sta::timingReportToString(design, analyzer);
    return r;
  });
}

Response TuningService::handlePing(const PingRequest& request,
                                   Clock::time_point received) {
  if (deadlineExpired(request.deadlineMillis, received)) {
    return timeoutResponse("deadline expired before compute started");
  }
  if (request.sleepMillis > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(request.sleepMillis));
  }
  Response r;
  r.status = Status::kOk;
  r.summary = "pong";
  r.body = request.echo;
  return r;
}

std::string TuningService::healthJson() {
  // Refresh the cache-tier gauges so the snapshot carries current sizes
  // (counters stream in continuously; sizes are sampled here).
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const artifact::MemCacheStats mem = mem_.stats();
  registry.gauge("server.memcache.bytes").set(static_cast<double>(mem.bytes));
  registry.gauge("server.memcache.entries")
      .set(static_cast<double>(mem.entries));
  registry.gauge("server.memcache.capacity")
      .set(static_cast<double>(mem.capacity));
  // Lifetime traffic counters of the shared tier: hit ratio and eviction
  // pressure are the two numbers that justify (or resize) the byte budget.
  registry.gauge("server.memcache.hits").set(static_cast<double>(mem.hits));
  registry.gauge("server.memcache.misses")
      .set(static_cast<double>(mem.misses));
  registry.gauge("server.memcache.insertions")
      .set(static_cast<double>(mem.insertions));
  registry.gauge("server.memcache.evictions")
      .set(static_cast<double>(mem.evictions));
  std::ostringstream out;
  obs::writeMetricsJson(out, registry.snapshot());
  return out.str();
}

}  // namespace sct::server
