#include "server/client.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sct::server {

Client Client::connectUnix(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + socketPath);
  }
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot connect to " + socketPath + ": " + err);
  }
  return Client(fd);
}

Client Client::connectTcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot connect to 127.0.0.1:" +
                             std::to_string(port) + ": " + err);
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response Client::call(MessageType type, std::span<const std::byte> payload) {
  if (fd_ < 0) throw ProtocolError("client not connected");
  try {
    writeFrame(fd_, type, payload);
  } catch (const ProtocolError&) {
    // The server may have answered and closed before reading the request —
    // the admission gate does exactly that with its kBusy frame. Prefer the
    // pending response over the write error; rethrow only when there is
    // nothing to read either.
    std::optional<Frame> pending = readFrame(fd_);
    if (pending && pending->type == MessageType::kResponse) {
      return decodeResponse(pending->payload);
    }
    throw;
  }
  std::optional<Frame> frame = readFrame(fd_);
  if (!frame) throw ProtocolError("connection closed before response");
  if (frame->type != MessageType::kResponse) {
    throw ProtocolError("expected a response frame");
  }
  return decodeResponse(frame->payload);
}

Response Client::flow(const FlowRequest& request) {
  return call(MessageType::kFlowRequest, encodeFlowRequest(request));
}

Response Client::scenario(const ScenarioRequest& request) {
  return call(MessageType::kScenarioRequest, encodeScenarioRequest(request));
}

Response Client::evolve(const EvolveRequest& request) {
  return call(MessageType::kEvolveRequest, encodeEvolveRequest(request));
}

Response Client::lint(const LintRequest& request) {
  return call(MessageType::kLintRequest, encodeLintRequest(request));
}

Response Client::sta(const StaRequest& request) {
  return call(MessageType::kStaRequest, encodeStaRequest(request));
}

Response Client::ping(const PingRequest& request) {
  return call(MessageType::kPingRequest, encodePingRequest(request));
}

Response Client::health() { return call(MessageType::kHealthRequest, {}); }

Response Client::shutdown() { return call(MessageType::kShutdownRequest, {}); }

}  // namespace sct::server
