#pragma once
// The sctuned daemon core (DESIGN.md §14): listens on a Unix-domain socket
// (and optionally a TCP loopback port), multiplexes persistent client
// sessions onto a bounded worker pool, and executes requests through the
// shared TuningService.
//
// Admission control: at most `sessionThreads` sessions execute while up to
// `maxQueuedSessions` more wait in the pool's FIFO. A connection arriving
// beyond that bound is answered with one pre-encoded kBusy response frame at
// the accept gate and closed — overload degrades to fast rejections with
// bounded latency, never to unbounded queueing (the p99 criterion in
// ISSUE.md). Per-request deadlines are enforced by the service; a session's
// first request counts its deadline from the accept time, so time spent in
// the admission queue counts against it (a queued client fast-fails with
// kTimeout instead of waiting out the whole queue).
//
// Graceful shutdown: stop() (or a client kShutdownRequest) stops accepting,
// half-closes every open session (shutdown(SHUT_RD)), lets requests already
// being processed finish and answer, then joins the workers. A session
// blocked waiting for its next request observes the half-close as EOF and
// exits; nothing in flight is dropped.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>

#include "core/sync.hpp"
#include "parallel/thread_pool.hpp"
#include "server/service.hpp"

namespace sct::server {

struct ServerConfig {
  /// Unix-domain socket path; empty disables the Unix listener. An existing
  /// socket file at the path is replaced (stale socket from a dead daemon).
  std::string socketPath;
  /// When true, also listen on 127.0.0.1:`tcpPort` (0 = kernel-assigned
  /// ephemeral port, readable via Server::tcpPort()). Loopback only — the
  /// daemon trusts its peers with filesystem-level access.
  bool tcpEnable = false;
  std::uint16_t tcpPort = 0;
  /// Concurrent session executors (the daemon's own pool; flow-internal
  /// parallelism still uses the global src/parallel pool).
  std::size_t sessionThreads = 4;
  /// Sessions allowed to wait beyond the executing ones before the accept
  /// gate starts rejecting with kBusy.
  std::size_t maxQueuedSessions = 16;
  ServiceConfig service;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();  ///< calls stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the accept thread. Throws
  /// std::runtime_error when nothing could be bound.
  void start();

  /// Graceful shutdown; idempotent, callable from any thread (including a
  /// session worker via requestStop()). Blocks until every session drained.
  void stop() SCT_EXCLUDES(sessionsMutex_);

  /// Signals shutdown without blocking (safe on a session thread; the
  /// thread that called start()/waitForStop() performs the actual stop()).
  void requestStop();

  /// Blocks until requestStop()/stop() was called, then tears down.
  void waitForStop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Actual bound TCP port (after start(), when tcpEnable was set).
  [[nodiscard]] std::uint16_t tcpPort() const noexcept { return boundPort_; }
  [[nodiscard]] TuningService& service() noexcept { return service_; }
  /// Sessions rejected at the accept gate (admission control).
  [[nodiscard]] std::uint64_t busyRejects() const noexcept {
    return busyRejects_.load(std::memory_order_relaxed);
  }

 private:
  void acceptLoop() SCT_EXCLUDES(sessionsMutex_);
  void runSession(int fd, TuningService::Clock::time_point accepted)
      SCT_EXCLUDES(sessionsMutex_);
  void closeListeners() noexcept;

  ServerConfig config_;
  TuningService service_;
  std::unique_ptr<parallel::ThreadPool> pool_;

  int unixFd_ = -1;
  int tcpFd_ = -1;
  int wakePipe_[2] = {-1, -1};  ///< written by requestStop() to wake poll()
  std::uint16_t boundPort_ = 0;

  std::thread acceptThread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> busyRejects_{0};

  // Session registry (DESIGN.md §16): sessionsMutex_ is the leaf lock of
  // the daemon — held only for set/counter updates and the drain wait,
  // never while computing or doing socket I/O beyond shutdown().
  Mutex sessionsMutex_;
  CondVar sessionsCv_;
  /// Open session sockets. Lookup-only unordered set (never iterated for
  /// output); the half-close sweep in stop() touches fds in hash order,
  /// which is observationally unordered anyway.
  std::unordered_set<int> sessionFds_ SCT_GUARDED_BY(sessionsMutex_);
  /// Accepted, not yet finished.
  std::size_t activeSessions_ SCT_GUARDED_BY(sessionsMutex_) = 0;
};

}  // namespace sct::server
