#pragma once
// Compiled per-cell timing views. At cell-bind time the analyzer interns
// pin names to slots and precompiles a dense [inputSlot][outputSlot] ->
// TimingArc table per cell, so the propagation loops never compare pin-name
// strings. Each compiled arc also knows whether its four LUTs share axes
// (they do by construction of the characterizer), in which case one axis
// search yields the interpolation weights for worst delay, best delay and
// worst transition at a single (slew, load) operating point.

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "liberty/cell.hpp"
#include "liberty/library.hpp"
#include "numeric/interp.hpp"

namespace sct::sta {

/// Worst/best delay and worst transition of one arc at one operating point.
struct ArcTiming {
  double worstDelay = 0.0;
  double bestDelay = 0.0;
  double worstTransition = 0.0;
};

/// One timing arc with precompiled evaluation state.
class CompiledArc {
 public:
  CompiledArc() = default;
  explicit CompiledArc(const liberty::TimingArc* arc);

  [[nodiscard]] const liberty::TimingArc* arc() const noexcept { return arc_; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return arc_ != nullptr;
  }

  /// All three propagation quantities with a single axis search (falls back
  /// to per-table lookups when the LUTs do not share axes). Bit-identical
  /// to TimingArc::worstDelay/bestDelay/worstTransition.
  [[nodiscard]] ArcTiming evaluate(double slew, double load) const noexcept;
  /// max(rise, fall) delay only — one axis search instead of two.
  [[nodiscard]] double worstDelay(double slew, double load) const noexcept;
  [[nodiscard]] double worstTransition(double slew,
                                       double load) const noexcept;

 private:
  const liberty::TimingArc* arc_ = nullptr;
  bool shared_axes_ = false;  ///< all four LUTs on one axis pair
  bool shared_delay_axes_ = false;
  bool shared_transition_axes_ = false;
};

/// Slot-indexed timing view of one bound cell.
class CompiledCell {
 public:
  CompiledCell() = default;
  explicit CompiledCell(const liberty::Cell& cell);

  [[nodiscard]] const liberty::Cell& cell() const noexcept { return *cell_; }

  /// Arc from combinational data-input slot to output slot (nullptr arc when
  /// the pair has no arc). Slots follow liberty::dataInputNames /
  /// outputNames order — the netlist instance slot order for mapped cells.
  [[nodiscard]] const CompiledArc& arc(std::size_t inputSlot,
                                       std::size_t outputSlot) const noexcept {
    if (inputSlot >= num_inputs_ || outputSlot >= num_outputs_) {
      return kNoArc;
    }
    return arcs_[inputSlot * num_outputs_ + outputSlot];
  }
  /// Clock-to-output launch arc of sequential cells, per output slot.
  [[nodiscard]] const CompiledArc& clockArc(
      std::size_t outputSlot) const noexcept {
    return outputSlot < clock_arcs_.size() ? clock_arcs_[outputSlot] : kNoArc;
  }

  /// Input capacitance presented by an instance input slot; seq selects the
  /// sequential naming (D, E) over the combinational data-input names.
  [[nodiscard]] double inputCap(bool seq, std::size_t slot) const noexcept {
    if (seq) {
      return slot < seq_input_cap_.size() ? seq_input_cap_[slot] : 0.0;
    }
    return slot < input_cap_.size() ? input_cap_[slot] : 0.0;
  }

  /// Liberty max_capacitance of an output slot's pin (0 when unspecified).
  [[nodiscard]] double maxLoad(std::size_t outputSlot) const noexcept {
    return outputSlot < max_load_.size() ? max_load_[outputSlot] : 0.0;
  }

  [[nodiscard]] std::size_t numInputSlots() const noexcept {
    return num_inputs_;
  }
  [[nodiscard]] std::size_t numOutputSlots() const noexcept {
    return num_outputs_;
  }

 private:
  static const CompiledArc kNoArc;

  const liberty::Cell* cell_ = nullptr;
  std::size_t num_inputs_ = 0;
  std::size_t num_outputs_ = 0;
  std::vector<CompiledArc> arcs_;  ///< dense [input][output], row-major
  std::array<CompiledArc, 2> clock_arcs_{};
  std::vector<double> input_cap_;      ///< per combinational data slot
  std::array<double, 2> seq_input_cap_{};  ///< D, E
  std::vector<double> max_load_;       ///< per output slot (0 = unspecified)
};

/// Compiled views keyed by cell identity. Cells compile lazily on first
/// use (bind time); the constructor only reserves table capacity for the
/// analyzer's library. Cells bound from other libraries (tests, ad-hoc
/// libraries) work the same way.
class TimingViewRegistry {
 public:
  TimingViewRegistry() = default;
  explicit TimingViewRegistry(const liberty::Library& library);

  [[nodiscard]] const CompiledCell& of(const liberty::Cell& cell) const;

 private:
  /// unique_ptr for stable addresses across rehashing.
  mutable std::unordered_map<const liberty::Cell*,
                             std::unique_ptr<CompiledCell>>
      views_;
};

}  // namespace sct::sta
