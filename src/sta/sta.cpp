#include "sta/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>
#include <queue>
#include <utility>

#include "core/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sct::sta {

using netlist::Design;
using netlist::Instance;
using netlist::InstIndex;
using netlist::kNoInst;
using netlist::kNoNet;
using netlist::NetIndex;
using netlist::PrimOp;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Incremental-STA worklist instrumentation (DESIGN.md §12): how big the
/// dirty seed sets are and how far the convergence sweeps actually reach.
/// Pure write-only observability — never read back by the analysis.
struct StaMetrics {
  obs::Counter& analyzeCalls;
  obs::Counter& updateCalls;
  obs::Counter& fullFallbacks;  ///< update() bailed to a from-scratch pass
  obs::Counter& fullSweeps;     ///< adaptive large-batch full-sweep path
  obs::Counter& levelBatchArcs; ///< arcs evaluated through level batches
  obs::Histogram& dirtyInstances;
  obs::Histogram& forwardEvals;
  obs::Histogram& backwardEvals;

  static StaMetrics& get() {
    static constexpr double kWorklistBounds[] = {1,    4,    16,   64,
                                                 256,  1024, 4096, 16384};
    static StaMetrics instance{
        obs::MetricsRegistry::global().counter("sta.analyze.calls"),
        obs::MetricsRegistry::global().counter("sta.update.calls"),
        obs::MetricsRegistry::global().counter("sta.update.full_fallbacks"),
        obs::MetricsRegistry::global().counter("sta.update.full_sweeps"),
        obs::MetricsRegistry::global().counter("sta.level.batch_arcs"),
        obs::MetricsRegistry::global().histogram("sta.update.dirty_instances",
                                                 kWorklistBounds),
        obs::MetricsRegistry::global().histogram("sta.update.forward_evals",
                                                 kWorklistBounds),
        obs::MetricsRegistry::global().histogram("sta.update.backward_evals",
                                                 kWorklistBounds)};
    return instance;
  }
};
}  // namespace

std::string_view inputPinName(const Instance& inst,
                              std::uint32_t slot) noexcept {
  assert(inst.cell != nullptr);
  switch (inst.op) {
    case PrimOp::kDff:
    case PrimOp::kDffR:
      return "D";
    case PrimOp::kDffE:
      return slot == 0 ? "D" : "E";
    default:
      return liberty::dataInputNames(inst.cell->function())[slot];
  }
}

std::string_view outputPinName(const Instance& inst,
                               std::uint32_t slot) noexcept {
  assert(inst.cell != nullptr);
  return liberty::outputNames(inst.cell->function())[slot];
}

TimingAnalyzer::TimingAnalyzer(const Design& design,
                               const liberty::Library& library,
                               ClockSpec clock)
    : design_(design), library_(library), clock_(clock), views_(library) {}

void TimingAnalyzer::refreshInstanceViews() {
  inst_view_.assign(design_.instanceCount(), nullptr);
  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    const Instance& inst = design_.instance(static_cast<InstIndex>(i));
    if (inst.alive && inst.cell != nullptr) {
      inst_view_[i] = &views_.of(*inst.cell);
    }
  }
}

double TimingAnalyzer::recomputeNetLoad(NetIndex n) const {
  const netlist::Net& net = design_.net(n);
  double load = net.isPrimaryOutput ? clock_.outputLoad : 0.0;
  std::size_t fanout = 0;
  for (const netlist::SinkRef& sink : net.sinks) {
    const Instance& inst = design_.instance(sink.instance);
    if (!inst.alive || inst.cell == nullptr) continue;
    load += inst_view_[sink.instance]->inputCap(netlist::isSequential(inst.op),
                                                sink.inputSlot);
    ++fanout;
  }
  return load + clock_.wireLoad.netCap(fanout);
}

void TimingAnalyzer::computeLoads() {
  load_.assign(design_.netCount(), 0.0);
  for (NetIndex n = 0; n < design_.netCount(); ++n) {
    load_[n] = recomputeNetLoad(n);
  }
}

bool TimingAnalyzer::levelize() {
  topo_.clear();
  topo_.reserve(design_.instanceCount());
  level_.assign(design_.instanceCount(), 0);
  std::vector<std::uint32_t> indegree(design_.instanceCount(), 0);

  std::size_t combCount = 0;
  std::vector<InstIndex> queue;
  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    const Instance& inst = design_.instance(static_cast<InstIndex>(i));
    if (!inst.alive) continue;
    const bool isSource = netlist::isSequential(inst.op) ||
                          netlist::numInputs(inst.op) == 0;
    if (!isSource) {
      ++combCount;
      // Every alive driver gates this instance: sequential launches and tie
      // cells write their output nets during propagation too, so a gate must
      // come after all of its drivers, not just the combinational ones.
      std::uint32_t deg = 0;
      for (NetIndex in : inst.inputs) {
        const netlist::Net& net = design_.net(in);
        if (net.driver == kNoInst) continue;
        if (design_.instance(net.driver).alive) ++deg;
      }
      indegree[i] = deg;
      if (deg == 0) queue.push_back(static_cast<InstIndex>(i));
    } else {
      queue.push_back(static_cast<InstIndex>(i));
    }
  }

  std::size_t combProcessed = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const InstIndex index = queue[head];
    const Instance& inst = design_.instance(index);
    topo_.push_back(index);
    const bool combinational = !netlist::isSequential(inst.op) &&
                               netlist::numInputs(inst.op) != 0;
    if (combinational) ++combProcessed;
    for (NetIndex out : inst.outputs) {
      for (const netlist::SinkRef& sink : design_.net(out).sinks) {
        const Instance& target = design_.instance(sink.instance);
        if (!target.alive || netlist::isSequential(target.op) ||
            netlist::numInputs(target.op) == 0) {
          continue;
        }
        level_[sink.instance] =
            std::max(level_[sink.instance], level_[index] + 1u);
        if (--indegree[sink.instance] == 0) queue.push_back(sink.instance);
      }
    }
  }
  return combProcessed == combCount;
}

std::uint32_t TimingAnalyzer::computeLevel(const Instance& inst) const {
  std::uint32_t level = 0;
  for (NetIndex in : inst.inputs) {
    const InstIndex d = design_.net(in).driver;
    if (d == kNoInst) continue;
    if (!design_.instance(d).alive) continue;
    level = std::max(level, level_[d] + 1u);
  }
  return level;
}

void TimingAnalyzer::rebuildTopoFromLevels() {
  topo_.clear();
  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    if (design_.instance(static_cast<InstIndex>(i)).alive) {
      topo_.push_back(static_cast<InstIndex>(i));
    }
  }
  std::sort(topo_.begin(), topo_.end(), [&](InstIndex a, InstIndex b) {
    return level_[a] != level_[b] ? level_[a] < level_[b] : a < b;
  });
}

void TimingAnalyzer::evalInstance(InstIndex index,
                                  std::vector<NetIndex>* changedNets) {
  const Instance& inst = design_.instance(index);
  if (!inst.alive || inst.cell == nullptr) return;
  const CompiledCell* view = inst_view_[index];
  assert(view != nullptr);

  const auto commit = [&](NetIndex out, double a, double m, double s,
                          const Pred& p) {
    const bool changed =
        a != arrival_[out] || m != min_arrival_[out] || s != slew_[out];
    arrival_[out] = a;
    min_arrival_[out] = m;
    slew_[out] = s;
    pred_[out] = p;
    if (changed && changedNets != nullptr) changedNets->push_back(out);
  };

  if (netlist::numInputs(inst.op) == 0) {
    // Tie cells: static outputs.
    for (NetIndex out : inst.outputs) {
      commit(out, 0.0, 0.0, clock_.inputSlew, Pred{});
    }
    return;
  }

  if (netlist::isSequential(inst.op)) {
    // Launch: clock -> Q through the precompiled clk->Q arc.
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const NetIndex out = inst.outputs[slot];
      const CompiledArc& arc = view->clockArc(slot);
      assert(arc);
      const ArcTiming t = arc.evaluate(clock_.clockSlew, load_[out]);
      const double delay = t.worstDelay * clock_.derateLate;
      commit(out, delay, t.bestDelay * clock_.derateEarly, t.worstTransition,
             Pred{index, arc.arc(), 0, delay, clock_.clockSlew});
    }
    return;
  }

  for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
    const NetIndex out = inst.outputs[slot];
    double bestArrival = -kInf;
    double earliest = kInf;
    double worstSlew = 0.0;
    Pred best;
    for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
      const CompiledArc& arc = view->arc(i, slot);
      if (!arc) continue;
      const NetIndex in = inst.inputs[i];
      const ArcTiming t = arc.evaluate(slew_[in], load_[out]);
      const double delay = t.worstDelay * clock_.derateLate;
      const double cand = arrival_[in] + delay;
      if (cand > bestArrival) {
        bestArrival = cand;
        best = Pred{index, arc.arc(), i, delay, slew_[in]};
      }
      earliest = std::min(earliest,
                          min_arrival_[in] + t.bestDelay * clock_.derateEarly);
      worstSlew = std::max(worstSlew, t.worstTransition);
    }
    assert(best.arc != nullptr);
    commit(out, bestArrival, earliest, worstSlew, best);
  }
}

std::size_t TimingAnalyzer::gatherInstanceArcs(
    InstIndex index, std::vector<ArcTask>& out) const {
  const Instance& inst = design_.instance(index);
  if (!inst.alive || inst.cell == nullptr) return 0;
  if (netlist::numInputs(inst.op) == 0) return 0;  // tie cells: no arcs
  const CompiledCell* view = inst_view_[index];
  assert(view != nullptr);
  std::size_t count = 0;

  if (netlist::isSequential(inst.op)) {
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const CompiledArc& arc = view->clockArc(slot);
      assert(arc);
      out.push_back(ArcTask{&arc, clock_.clockSlew, load_[inst.outputs[slot]]});
      ++count;
    }
    return count;
  }

  for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
    const NetIndex out_net = inst.outputs[slot];
    for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
      const CompiledArc& arc = view->arc(i, slot);
      if (!arc) continue;
      out.push_back(ArcTask{&arc, slew_[inst.inputs[i]], load_[out_net]});
      ++count;
    }
  }
  return count;
}

void TimingAnalyzer::commitInstance(InstIndex index,
                                    std::span<const ArcTiming> timings,
                                    std::vector<NetIndex>* changedNets) {
  const Instance& inst = design_.instance(index);
  if (!inst.alive || inst.cell == nullptr) return;

  const auto commit = [&](NetIndex out, double a, double m, double s,
                          const Pred& p) {
    const bool changed =
        a != arrival_[out] || m != min_arrival_[out] || s != slew_[out];
    arrival_[out] = a;
    min_arrival_[out] = m;
    slew_[out] = s;
    pred_[out] = p;
    if (changed && changedNets != nullptr) changedNets->push_back(out);
  };

  if (netlist::numInputs(inst.op) == 0) {
    for (NetIndex out : inst.outputs) {
      commit(out, 0.0, 0.0, clock_.inputSlew, Pred{});
    }
    return;
  }

  // The batch's inputs are all at lower levels, so the state read here is
  // the state the gather saw — the reductions below replay evalInstance()
  // term for term.
  std::size_t cursor = 0;
  if (netlist::isSequential(inst.op)) {
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const NetIndex out = inst.outputs[slot];
      const CompiledArc& arc = inst_view_[index]->clockArc(slot);
      const ArcTiming t = timings[cursor++];
      const double delay = t.worstDelay * clock_.derateLate;
      commit(out, delay, t.bestDelay * clock_.derateEarly, t.worstTransition,
             Pred{index, arc.arc(), 0, delay, clock_.clockSlew});
    }
    return;
  }

  const CompiledCell* view = inst_view_[index];
  for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
    const NetIndex out = inst.outputs[slot];
    double bestArrival = -kInf;
    double earliest = kInf;
    double worstSlew = 0.0;
    Pred best;
    for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
      const CompiledArc& arc = view->arc(i, slot);
      if (!arc) continue;
      const NetIndex in = inst.inputs[i];
      const ArcTiming t = timings[cursor++];
      const double delay = t.worstDelay * clock_.derateLate;
      const double cand = arrival_[in] + delay;
      if (cand > bestArrival) {
        bestArrival = cand;
        best = Pred{index, arc.arc(), i, delay, slew_[in]};
      }
      earliest = std::min(earliest,
                          min_arrival_[in] + t.bestDelay * clock_.derateEarly);
      worstSlew = std::max(worstSlew, t.worstTransition);
    }
    assert(best.arc != nullptr);
    commit(out, bestArrival, earliest, worstSlew, best);
  }
  assert(cursor == timings.size());
}

void TimingAnalyzer::evalInstancesBatched(
    std::span<const InstIndex> instances,
    std::vector<NetIndex>* changedNets) {
  batch_tasks_.clear();
  batch_counts_.clear();
  for (const InstIndex index : instances) {
    batch_counts_.push_back(
        static_cast<std::uint32_t>(gatherInstanceArcs(index, batch_tasks_)));
  }

  // The hot loop of a full sweep: every arc of the level in one contiguous
  // pass over (arc, slew, load) triples.
  batch_timings_.resize(batch_tasks_.size());
  for (std::size_t j = 0; j < batch_tasks_.size(); ++j) {
    const ArcTask& task = batch_tasks_[j];
    batch_timings_[j] = task.arc->evaluate(task.slew, task.load);
  }
  StaMetrics::get().levelBatchArcs.add(batch_tasks_.size());

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    commitInstance(instances[i],
                   std::span<const ArcTiming>{batch_timings_.data() + cursor,
                                              batch_counts_[i]},
                   changedNets);
    cursor += batch_counts_[i];
  }
}

void TimingAnalyzer::propagateArrivals() {
  arrival_.assign(design_.netCount(), 0.0);
  min_arrival_.assign(design_.netCount(), 0.0);
  slew_.assign(design_.netCount(), clock_.inputSlew);
  pred_.assign(design_.netCount(), Pred{});

  for (const netlist::Port& port : design_.ports()) {
    if (port.direction == netlist::PortDirection::kInput) {
      arrival_[port.net] = clock_.inputDelay;
      min_arrival_[port.net] = clock_.inputDelay;
      slew_[port.net] = clock_.inputSlew;
    }
  }

  if (!level_batched_) {
    // Scalar oracle sweep: one instance at a time in topological order.
    for (InstIndex index : topo_) {
      assert(design_.instance(index).cell != nullptr &&
             "STA requires a mapped design");
      evalInstance(index, nullptr);
    }
    return;
  }

  // Level-batched sweep. topo_ is level-monotonic both after levelize()
  // (FIFO Kahn pushes every level-L instance before any level-(L+1) one)
  // and after rebuildTopoFromLevels() (sorted by level), so the levels are
  // contiguous runs.
  std::size_t start = 0;
  while (start < topo_.size()) {
    assert(design_.instance(topo_[start]).cell != nullptr &&
           "STA requires a mapped design");
    const std::uint32_t level = level_[topo_[start]];
    std::size_t end = start + 1;
    while (end < topo_.size() && level_[topo_[end]] == level) ++end;
    evalInstancesBatched(
        std::span<const InstIndex>{topo_.data() + start, end - start},
        nullptr);
    start = end;
  }
}

void TimingAnalyzer::collectEndpoints() {
  endpoints_.clear();
  worst_slack_ = kInf;
  worst_hold_slack_ = kInf;
  tns_ = 0.0;
  ep_required_.assign(design_.netCount(), kInf);

  auto finish = [&](const Endpoint& ep0) {
    Endpoint ep = ep0;
    ep.slack = ep.required - ep.arrival;
    worst_slack_ = std::min(worst_slack_, ep.slack);
    if (ep.slack < 0.0) tns_ += ep.slack;
    ep_required_[ep.net] = std::min(ep_required_[ep.net], ep.required);
    endpoints_.push_back(ep);
  };

  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    const Instance& inst = design_.instance(static_cast<InstIndex>(i));
    if (!inst.alive || !netlist::isSequential(inst.op)) continue;
    for (std::uint32_t slot = 0; slot < inst.inputs.size(); ++slot) {
      Endpoint ep;
      ep.instance = static_cast<InstIndex>(i);
      ep.inputSlot = slot;
      ep.net = inst.inputs[slot];
      ep.arrival = arrival_[ep.net];
      ep.required = clock_.effectivePeriod() -
                    inst.cell->setupTime(slew_[ep.net], clock_.clockSlew);
      // Hold: data launched by this edge must not race through before the
      // capturing flop's hold window closes (ideal clock, zero skew).
      ep.minArrival = min_arrival_[ep.net];
      ep.holdSlack = ep.minArrival - inst.cell->holdTime();
      worst_hold_slack_ = std::min(worst_hold_slack_, ep.holdSlack);
      finish(ep);
    }
  }
  for (std::size_t p = 0; p < design_.ports().size(); ++p) {
    const netlist::Port& port = design_.ports()[p];
    if (port.direction != netlist::PortDirection::kOutput) continue;
    Endpoint ep;
    ep.net = port.net;
    ep.port = static_cast<std::uint32_t>(p);
    ep.arrival = arrival_[port.net];
    ep.required = clock_.effectivePeriod();
    finish(ep);
  }
  if (endpoints_.empty()) worst_slack_ = 0.0;
}

void TimingAnalyzer::propagateRequired() {
  required_ = ep_required_;
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const Instance& inst = design_.instance(*it);
    if (netlist::isSequential(inst.op) || netlist::numInputs(inst.op) == 0) {
      continue;
    }
    const CompiledCell* view = inst_view_[*it];
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const NetIndex out = inst.outputs[slot];
      if (required_[out] == kInf) continue;
      for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
        const CompiledArc& arc = view->arc(i, slot);
        if (!arc) continue;
        const NetIndex in = inst.inputs[i];
        const double delay =
            arc.worstDelay(slew_[in], load_[out]) * clock_.derateLate;
        required_[in] = std::min(required_[in], required_[out] - delay);
      }
    }
  }
}

double TimingAnalyzer::recomputeRequired(NetIndex n) const {
  double r = ep_required_[n];
  for (const netlist::SinkRef& sink : design_.net(n).sinks) {
    const Instance& inst = design_.instance(sink.instance);
    if (!inst.alive || inst.cell == nullptr) continue;
    if (netlist::isSequential(inst.op) || netlist::numInputs(inst.op) == 0) {
      continue;
    }
    const CompiledCell* view = inst_view_[sink.instance];
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const NetIndex out = inst.outputs[slot];
      if (required_[out] == kInf) continue;
      const CompiledArc& arc = view->arc(sink.inputSlot, slot);
      if (!arc) continue;
      const double delay =
          arc.worstDelay(slew_[n], load_[out]) * clock_.derateLate;
      r = std::min(r, required_[out] - delay);
    }
  }
  return r;
}

bool TimingAnalyzer::analyze() {
  SCT_TRACE_SPAN("sta.analyze");
  StaMetrics::get().analyzeCalls.inc();
  pending_.clear();
  baseline_valid_ = false;
  // A mapped design is a precondition; fail cleanly on unmapped instances
  // (e.g. when synthesis could not find usable cells for every function).
  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    const Instance& inst = design_.instance(static_cast<InstIndex>(i));
    if (inst.alive && inst.cell == nullptr) return false;
  }
  refreshInstanceViews();
  computeLoads();
  if (!levelize()) return false;
  propagateArrivals();
  collectEndpoints();
  propagateRequired();
  baseline_valid_ = true;
  return true;
}

void TimingAnalyzer::notifyCellSwap(InstIndex instance) {
  pending_.push_back(PendingEdit{PendingEdit::Kind::kCellSwap, instance, 0,
                                 kNoNet});
}

void TimingAnalyzer::notifyBufferInsert(InstIndex instance) {
  pending_.push_back(PendingEdit{PendingEdit::Kind::kNewInstance, instance, 0,
                                 kNoNet});
}

void TimingAnalyzer::notifyReconnect(InstIndex sink, std::uint32_t slot,
                                     NetIndex previousNet) {
  pending_.push_back(
      PendingEdit{PendingEdit::Kind::kReconnect, sink, slot, previousNet});
}

bool TimingAnalyzer::update() {
  if (!baseline_valid_) return analyze();
  if (pending_.empty()) return true;
  SCT_TRACE_SPAN("sta.update");
  StaMetrics& metrics = StaMetrics::get();
  metrics.updateCalls.inc();

  const std::size_t netCount = design_.netCount();
  const std::size_t instCount = design_.instanceCount();

  // Grow per-net / per-instance state for netlist growth since the baseline;
  // defaults match the initial values of a full propagation.
  load_.resize(netCount, 0.0);
  arrival_.resize(netCount, 0.0);
  min_arrival_.resize(netCount, 0.0);
  slew_.resize(netCount, clock_.inputSlew);
  required_.resize(netCount, kInf);
  pred_.resize(netCount);
  level_.resize(instCount, 0);
  inst_view_.resize(instCount, nullptr);

  // --- classify the recorded edits -----------------------------------------
  std::vector<std::uint8_t> netTouched(netCount, 0);
  std::vector<std::uint8_t> instDirty(instCount, 0);
  std::vector<NetIndex> touchedNets;
  std::vector<InstIndex> dirtyInsts;
  std::vector<NetIndex> backwardSeeds;
  bool structural = false;

  const auto touchNet = [&](NetIndex n) {
    if (n == kNoNet || n >= netCount || netTouched[n] != 0) return;
    netTouched[n] = 1;
    touchedNets.push_back(n);
  };
  const auto markDirty = [&](InstIndex i) {
    if (instDirty[i] != 0) return;
    instDirty[i] = 1;
    dirtyInsts.push_back(i);
  };

  for (const PendingEdit& edit : pending_) {
    const Instance& inst = design_.instance(edit.instance);
    if (!inst.alive || inst.cell == nullptr) {
      // Removed or unmapped mid-flight: outside the incremental contract.
      metrics.fullFallbacks.inc();
      return analyze();
    }
    switch (edit.kind) {
      case PendingEdit::Kind::kCellSwap:
        // New LUTs and input caps: re-evaluate the instance, re-sum the
        // loads it presents, and redo required times into its inputs.
        inst_view_[edit.instance] = &views_.of(*inst.cell);
        for (NetIndex in : inst.inputs) {
          touchNet(in);
          backwardSeeds.push_back(in);
        }
        markDirty(edit.instance);
        break;
      case PendingEdit::Kind::kNewInstance:
        structural = true;
        inst_view_[edit.instance] = &views_.of(*inst.cell);
        for (NetIndex in : inst.inputs) {
          touchNet(in);
          backwardSeeds.push_back(in);
        }
        for (NetIndex out : inst.outputs) {
          touchNet(out);
          backwardSeeds.push_back(out);
        }
        markDirty(edit.instance);
        break;
      case PendingEdit::Kind::kReconnect:
        structural = true;
        touchNet(edit.oldNet);
        backwardSeeds.push_back(edit.oldNet);
        if (edit.slot < inst.inputs.size()) {
          const NetIndex now = inst.inputs[edit.slot];
          touchNet(now);
          backwardSeeds.push_back(now);
        }
        markDirty(edit.instance);
        break;
    }
  }
  pending_.clear();

  // --- loads ----------------------------------------------------------------
  // Fresh sink-order summation per touched net (never +/- deltas, so the
  // result is bit-identical to computeLoads()). A changed load re-times the
  // net's driver and invalidates required times into that driver.
  for (NetIndex n : touchedNets) {
    const double load = recomputeNetLoad(n);
    if (load == load_[n]) continue;
    load_[n] = load;
    const InstIndex d = design_.net(n).driver;
    if (d == kNoInst) continue;
    const Instance& drv = design_.instance(d);
    if (!drv.alive || drv.cell == nullptr) continue;
    markDirty(d);
    for (NetIndex in : drv.inputs) backwardSeeds.push_back(in);
  }

  // --- levelization splice --------------------------------------------------
  // Structural edits move instances between levels; relax the affected
  // region forward to a fixpoint instead of re-running Kahn globally.
  if (structural) {
    std::vector<InstIndex> queue(dirtyInsts);
    std::size_t relaxations = 0;
    const std::size_t relaxationCap = 16 * instCount + 64;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      if (++relaxations > relaxationCap) {
        metrics.fullFallbacks.inc();
        return analyze();  // combinational cycle introduced by edits
      }
      const InstIndex index = queue[head];
      const Instance& inst = design_.instance(index);
      if (!inst.alive) continue;
      if (netlist::isSequential(inst.op) || netlist::numInputs(inst.op) == 0) {
        continue;  // sources stay at level 0
      }
      const std::uint32_t level = computeLevel(inst);
      if (level == level_[index]) continue;
      level_[index] = level;
      for (NetIndex out : inst.outputs) {
        for (const netlist::SinkRef& sink : design_.net(out).sinks) {
          const Instance& target = design_.instance(sink.instance);
          if (!target.alive || netlist::isSequential(target.op) ||
              netlist::numInputs(target.op) == 0) {
            continue;
          }
          queue.push_back(sink.instance);
        }
      }
    }
  }

  // --- adaptive fallback ----------------------------------------------------
  // A drain seeded with a large fraction of the design (the first electrical
  // fix-up pass resizes most gates) pays more in worklist ordering than the
  // plain level-order sweeps of a full pass. The sweeps reassign every array
  // entry and are order-independent within a valid topological order, so the
  // spliced levels stand in for a Kahn re-levelization.
  metrics.dirtyInstances.observe(static_cast<double>(dirtyInsts.size()));
  if (dirtyInsts.size() * 4 > instCount) {
    metrics.fullSweeps.inc();
    computeLoads();
    if (structural) rebuildTopoFromLevels();
    propagateArrivals();
    collectEndpoints();
    propagateRequired();
    return true;
  }

  // --- forward propagation --------------------------------------------------
  // Dirty instances seed a level-ordered worklist. Levels strictly increase
  // along every driver->sink edge, so each instance is evaluated at most
  // once and always after its relevant fan-in settled; propagation stops
  // where the (arrival, minArrival, slew) triple is bitwise unchanged.
  using LevelInst = std::pair<std::uint32_t, InstIndex>;
  std::priority_queue<LevelInst, std::vector<LevelInst>, std::greater<>> fwd;
  std::vector<std::uint8_t> inFwd(instCount, 0);
  const auto enqueueFwd = [&](InstIndex i) {
    if (inFwd[i] != 0) return;
    inFwd[i] = 1;
    fwd.emplace(level_[i], i);
  };
  for (InstIndex i : dirtyInsts) enqueueFwd(i);

  std::vector<NetIndex> changedNets;
  std::vector<std::uint8_t> netForwardChanged(netCount, 0);
  std::size_t forwardEvals = 0;
  const auto fanoutChanged = [&]() {
    for (NetIndex out : changedNets) {
      if (netForwardChanged[out] == 0) {
        netForwardChanged[out] = 1;
        backwardSeeds.push_back(out);
      }
      for (const netlist::SinkRef& sink : design_.net(out).sinks) {
        const Instance& target = design_.instance(sink.instance);
        if (!target.alive || target.cell == nullptr) continue;
        if (netlist::isSequential(target.op) ||
            netlist::numInputs(target.op) == 0) {
          continue;  // endpoint census below picks up the new arrival
        }
        enqueueFwd(sink.instance);
      }
    }
  };
  if (!level_batched_) {
    while (!fwd.empty()) {
      const InstIndex index = fwd.top().second;
      fwd.pop();
      ++forwardEvals;
      changedNets.clear();
      evalInstance(index, &changedNets);
      fanoutChanged();
    }
  } else {
    // Level-batched drain: pop every instance of the front level (popping
    // cannot admit same-level work — an evaluation only enqueues sinks, and
    // those are at strictly higher levels), evaluate them through one flat
    // batch, then fan the changed nets out exactly as the scalar loop does.
    std::vector<InstIndex> levelInsts;
    while (!fwd.empty()) {
      const std::uint32_t level = fwd.top().first;
      levelInsts.clear();
      while (!fwd.empty() && fwd.top().first == level) {
        levelInsts.push_back(fwd.top().second);
        fwd.pop();
      }
      forwardEvals += levelInsts.size();
      changedNets.clear();
      evalInstancesBatched(levelInsts, &changedNets);
      fanoutChanged();
    }
  }

  // --- endpoint census ------------------------------------------------------
  // O(endpoints) and allocation-free (no name strings); recomputing all
  // endpoint slacks keeps the WNS/TNS aggregates exact under any edit.
  collectEndpoints();

  // --- backward required ----------------------------------------------------
  // Seeds: nets whose forward triple changed, inputs of re-timed or
  // re-compiled instances, and both sides of every reconnect. Nets drain in
  // decreasing driver-level order, so each net is recomputed at most once,
  // after all of its sinks' output nets settled.
  using LevelNet = std::pair<std::uint32_t, NetIndex>;
  std::priority_queue<LevelNet, std::vector<LevelNet>, std::less<>> bwd;
  std::vector<std::uint8_t> inBwd(netCount, 0);
  const auto netLevel = [&](NetIndex n) -> std::uint32_t {
    const InstIndex d = design_.net(n).driver;
    return d == kNoInst ? 0u : level_[d] + 1u;
  };
  const auto enqueueBwd = [&](NetIndex n) {
    if (n == kNoNet || n >= netCount || inBwd[n] != 0) return;
    inBwd[n] = 1;
    bwd.emplace(netLevel(n), n);
  };
  for (NetIndex n : backwardSeeds) enqueueBwd(n);

  std::size_t backwardEvals = 0;
  while (!bwd.empty()) {
    const NetIndex n = bwd.top().second;
    bwd.pop();
    ++backwardEvals;
    const double r = recomputeRequired(n);
    if (r == required_[n]) continue;
    required_[n] = r;
    const InstIndex d = design_.net(n).driver;
    if (d == kNoInst) continue;
    const Instance& drv = design_.instance(d);
    if (!drv.alive || netlist::isSequential(drv.op) ||
        netlist::numInputs(drv.op) == 0) {
      continue;
    }
    for (NetIndex in : drv.inputs) enqueueBwd(in);
  }

  metrics.forwardEvals.observe(static_cast<double>(forwardEvals));
  metrics.backwardEvals.observe(static_cast<double>(backwardEvals));
  if (structural) rebuildTopoFromLevels();
  return true;
}

std::string endpointName(const Design& design, const Endpoint& endpoint) {
  if (endpoint.instance != kNoInst) {
    const Instance& inst = design.instance(endpoint.instance);
    return inst.name + "/" +
           std::string(inputPinName(inst, endpoint.inputSlot));
  }
  if (endpoint.port < design.ports().size()) {
    return design.ports()[endpoint.port].name;
  }
  return "PO";
}

std::string TimingAnalyzer::endpointName(const Endpoint& endpoint) const {
  return sta::endpointName(design_, endpoint);
}

bool TimingAnalyzer::crossCheckEnabled() {
  static const bool enabled = env::parseFlag(
      "SCT_STA_CHECK", env::get("SCT_STA_CHECK").value_or(""), false);
  return enabled;
}

namespace {

std::string describeDiff(const char* what, std::size_t index, double got,
                         double want) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s[%zu]: incremental=%.17g reference=%.17g",
                what, index, got, want);
  return buf;
}

}  // namespace

std::string TimingAnalyzer::diffAgainstReference() const {
  TimingAnalyzer ref(design_, library_, clock_);
  // The reference always runs the scalar per-instance sweep, so a cross
  // check also verifies batched-vs-scalar bit identity.
  ref.setLevelBatchedPropagation(false);
  if (!ref.analyze()) return "reference analyze() failed";

  const auto diffVec = [](const char* what, const std::vector<double>& got,
                          const std::vector<double>& want) -> std::string {
    if (got.size() != want.size()) {
      return std::string(what) + ": size mismatch";
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != want[i]) return describeDiff(what, i, got[i], want[i]);
    }
    return {};
  };

  std::string d;
  if (!(d = diffVec("load", load_, ref.load_)).empty()) return d;
  if (!(d = diffVec("arrival", arrival_, ref.arrival_)).empty()) return d;
  if (!(d = diffVec("minArrival", min_arrival_, ref.min_arrival_)).empty()) {
    return d;
  }
  if (!(d = diffVec("slew", slew_, ref.slew_)).empty()) return d;
  if (!(d = diffVec("required", required_, ref.required_)).empty()) return d;

  if (pred_.size() != ref.pred_.size()) return "pred: size mismatch";
  for (std::size_t i = 0; i < pred_.size(); ++i) {
    if (pred_[i].instance != ref.pred_[i].instance ||
        pred_[i].inputSlot != ref.pred_[i].inputSlot ||
        pred_[i].delay != ref.pred_[i].delay ||
        pred_[i].inputSlew != ref.pred_[i].inputSlew) {
      return describeDiff("pred.delay", i, pred_[i].delay, ref.pred_[i].delay);
    }
  }

  if (endpoints_.size() != ref.endpoints_.size()) {
    return "endpoints: size mismatch";
  }
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const Endpoint& a = endpoints_[i];
    const Endpoint& b = ref.endpoints_[i];
    if (a.instance != b.instance || a.inputSlot != b.inputSlot ||
        a.net != b.net || a.port != b.port) {
      return "endpoints[" + std::to_string(i) + "]: identity mismatch";
    }
    if (a.arrival != b.arrival) {
      return describeDiff("endpoint.arrival", i, a.arrival, b.arrival);
    }
    if (a.required != b.required) {
      return describeDiff("endpoint.required", i, a.required, b.required);
    }
    if (a.slack != b.slack) {
      return describeDiff("endpoint.slack", i, a.slack, b.slack);
    }
    if (a.minArrival != b.minArrival) {
      return describeDiff("endpoint.minArrival", i, a.minArrival,
                          b.minArrival);
    }
    if (a.holdSlack != b.holdSlack) {
      return describeDiff("endpoint.holdSlack", i, a.holdSlack, b.holdSlack);
    }
  }
  if (worst_slack_ != ref.worst_slack_) {
    return describeDiff("worstSlack", 0, worst_slack_, ref.worst_slack_);
  }
  if (tns_ != ref.tns_) return describeDiff("tns", 0, tns_, ref.tns_);
  if (worst_hold_slack_ != ref.worst_hold_slack_) {
    return describeDiff("worstHoldSlack", 0, worst_hold_slack_,
                        ref.worst_hold_slack_);
  }
  return {};
}

TimingPath TimingAnalyzer::worstPathTo(const Endpoint& endpoint) const {
  TimingPath path;
  path.endpoint = endpoint;
  NetIndex net = endpoint.net;
  while (net != kNoNet) {
    const Pred& pred = pred_[net];
    if (pred.instance == kNoInst || pred.arc == nullptr) break;  // PI or tie
    const Instance& inst = design_.instance(pred.instance);
    path.steps.push_back(PathStep{pred.instance, inst.cell, pred.arc,
                                  pred.inputSlew, load_[net], pred.delay});
    if (netlist::isSequential(inst.op)) break;  // launching flip-flop
    net = inst.inputs[pred.inputSlot];
  }
  std::reverse(path.steps.begin(), path.steps.end());
  return path;
}

TimingPath TimingAnalyzer::criticalPath() const {
  const Endpoint* worst = nullptr;
  for (const Endpoint& ep : endpoints_) {
    if (worst == nullptr || ep.slack < worst->slack) worst = &ep;
  }
  if (worst == nullptr) return {};
  return worstPathTo(*worst);
}

std::vector<TimingPath> TimingAnalyzer::kWorstPathsTo(
    const Endpoint& endpoint, std::size_t k) const {
  // Best-first backward enumeration: a partial path is a suffix of steps
  // from some net to the endpoint; its bound is the best achievable total
  // arrival (forward arrival at the net plus the suffix delay), which is
  // exact, so paths pop in decreasing-arrival order.
  struct Partial {
    NetIndex net = kNoNet;
    double suffixDelay = 0.0;
    double bound = 0.0;
    std::vector<PathStep> reversedSteps;  // endpoint-side first
  };
  auto worseBound = [](const Partial& a, const Partial& b) {
    return a.bound < b.bound;
  };
  std::priority_queue<Partial, std::vector<Partial>, decltype(worseBound)>
      queue(worseBound);
  queue.push(Partial{endpoint.net, 0.0, arrival_[endpoint.net], {}});

  std::vector<TimingPath> out;
  // Guard against pathological fan-in explosions.
  std::size_t expansions = 0;
  const std::size_t expansionCap = 20000 + 200 * k;
  while (!queue.empty() && out.size() < k && expansions < expansionCap) {
    ++expansions;
    Partial p = queue.top();
    queue.pop();
    const netlist::Net& net = design_.net(p.net);

    auto emit = [&](std::vector<PathStep> steps, double arrivalAtSource) {
      std::reverse(steps.begin(), steps.end());
      TimingPath path;
      path.steps = std::move(steps);
      path.endpoint = endpoint;
      path.endpoint.arrival = arrivalAtSource + p.suffixDelay;
      path.endpoint.slack = path.endpoint.required - path.endpoint.arrival;
      out.push_back(std::move(path));
    };

    if (net.driver == kNoInst) {
      emit(p.reversedSteps, clock_.inputDelay);  // primary-input launch
      continue;
    }
    const Instance& drv = design_.instance(net.driver);
    if (netlist::numInputs(drv.op) == 0) {
      emit(p.reversedSteps, 0.0);  // tie cell
      continue;
    }
    if (netlist::isSequential(drv.op)) {
      const liberty::TimingArc* arc =
          drv.cell->findArc("CP", outputPinName(drv, net.driverSlot));
      if (arc == nullptr) continue;
      const double delay =
          arc->worstDelay(clock_.clockSlew, load_[p.net]) * clock_.derateLate;
      std::vector<PathStep> steps = p.reversedSteps;
      steps.push_back(PathStep{net.driver, drv.cell, arc, clock_.clockSlew,
                               load_[p.net], delay});
      // The launch arrival is the flip-flop's clk->Q delay (the appended
      // step's delay is not folded into suffixDelay, so add it here).
      emit(std::move(steps), delay);
      continue;
    }
    // Combinational driver: branch over every fan-in arc.
    for (std::uint32_t i = 0; i < drv.inputs.size(); ++i) {
      const liberty::TimingArc* arc = drv.cell->findArc(
          inputPinName(drv, i), outputPinName(drv, net.driverSlot));
      if (arc == nullptr) continue;
      const NetIndex in = drv.inputs[i];
      const double delay =
          arc->worstDelay(slew_[in], load_[p.net]) * clock_.derateLate;
      Partial next;
      next.net = in;
      next.suffixDelay = p.suffixDelay + delay;
      next.bound = arrival_[in] + next.suffixDelay;
      next.reversedSteps = p.reversedSteps;
      next.reversedSteps.push_back(PathStep{net.driver, drv.cell, arc,
                                            slew_[in], load_[p.net], delay});
      queue.push(std::move(next));
    }
  }
  return out;
}

std::vector<TimingPath> TimingAnalyzer::endpointWorstPaths() const {
  std::vector<TimingPath> paths;
  paths.reserve(endpoints_.size());
  for (const Endpoint& ep : endpoints_) paths.push_back(worstPathTo(ep));
  return paths;
}

}  // namespace sct::sta
