#include "sta/sta.hpp"

#include <algorithm>
#include <queue>
#include <cassert>
#include <limits>

namespace sct::sta {

using netlist::Design;
using netlist::Instance;
using netlist::InstIndex;
using netlist::kNoInst;
using netlist::kNoNet;
using netlist::NetIndex;
using netlist::PrimOp;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::string_view inputPinName(const Instance& inst,
                              std::uint32_t slot) noexcept {
  assert(inst.cell != nullptr);
  switch (inst.op) {
    case PrimOp::kDff:
    case PrimOp::kDffR:
      return "D";
    case PrimOp::kDffE:
      return slot == 0 ? "D" : "E";
    default:
      return liberty::dataInputNames(inst.cell->function())[slot];
  }
}

std::string_view outputPinName(const Instance& inst,
                               std::uint32_t slot) noexcept {
  assert(inst.cell != nullptr);
  return liberty::outputNames(inst.cell->function())[slot];
}

TimingAnalyzer::TimingAnalyzer(const Design& design,
                               const liberty::Library& library,
                               ClockSpec clock)
    : design_(design), library_(library), clock_(clock) {
  (void)library_;
}

void TimingAnalyzer::computeLoads() {
  load_.assign(design_.netCount(), 0.0);
  for (NetIndex n = 0; n < design_.netCount(); ++n) {
    const netlist::Net& net = design_.net(n);
    double load = net.isPrimaryOutput ? clock_.outputLoad : 0.0;
    std::size_t fanout = 0;
    for (const netlist::SinkRef& sink : net.sinks) {
      const Instance& inst = design_.instance(sink.instance);
      if (!inst.alive || inst.cell == nullptr) continue;
      load += inst.cell->inputCapacitance(inputPinName(inst, sink.inputSlot));
      ++fanout;
    }
    load_[n] = load + clock_.wireLoad.netCap(fanout);
  }
}

bool TimingAnalyzer::levelize() {
  topo_.clear();
  topo_.reserve(design_.instanceCount());
  std::vector<std::uint32_t> indegree(design_.instanceCount(), 0);

  std::size_t combCount = 0;
  std::vector<InstIndex> queue;
  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    const Instance& inst = design_.instance(static_cast<InstIndex>(i));
    if (!inst.alive) continue;
    const bool isSource = netlist::isSequential(inst.op) ||
                          netlist::numInputs(inst.op) == 0;
    if (!isSource) {
      ++combCount;
      std::uint32_t deg = 0;
      for (NetIndex in : inst.inputs) {
        const netlist::Net& net = design_.net(in);
        if (net.driver == kNoInst) continue;
        const Instance& drv = design_.instance(net.driver);
        if (drv.alive && !netlist::isSequential(drv.op) &&
            netlist::numInputs(drv.op) != 0) {
          ++deg;
        }
      }
      indegree[i] = deg;
      if (deg == 0) queue.push_back(static_cast<InstIndex>(i));
    } else {
      queue.push_back(static_cast<InstIndex>(i));
    }
  }

  std::size_t combProcessed = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const InstIndex index = queue[head];
    const Instance& inst = design_.instance(index);
    topo_.push_back(index);
    const bool combinational = !netlist::isSequential(inst.op) &&
                               netlist::numInputs(inst.op) != 0;
    if (combinational) ++combProcessed;
    for (NetIndex out : inst.outputs) {
      for (const netlist::SinkRef& sink : design_.net(out).sinks) {
        const Instance& target = design_.instance(sink.instance);
        if (!target.alive || netlist::isSequential(target.op) ||
            netlist::numInputs(target.op) == 0) {
          continue;
        }
        if (--indegree[sink.instance] == 0) queue.push_back(sink.instance);
      }
    }
  }
  return combProcessed == combCount;
}

void TimingAnalyzer::propagateArrivals() {
  arrival_.assign(design_.netCount(), 0.0);
  min_arrival_.assign(design_.netCount(), 0.0);
  slew_.assign(design_.netCount(), clock_.inputSlew);
  pred_.assign(design_.netCount(), Pred{});

  for (const netlist::Port& port : design_.ports()) {
    if (port.direction == netlist::PortDirection::kInput) {
      arrival_[port.net] = clock_.inputDelay;
      min_arrival_[port.net] = clock_.inputDelay;
      slew_[port.net] = clock_.inputSlew;
    }
  }

  for (InstIndex index : topo_) {
    const Instance& inst = design_.instance(index);
    assert(inst.cell != nullptr && "STA requires a mapped design");

    if (netlist::numInputs(inst.op) == 0) {
      // Tie cells: static outputs.
      for (NetIndex out : inst.outputs) {
        arrival_[out] = 0.0;
        slew_[out] = clock_.inputSlew;
      }
      continue;
    }

    if (netlist::isSequential(inst.op)) {
      // Launch: clock -> Q through the clk->Q arc.
      for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
        const NetIndex out = inst.outputs[slot];
        const liberty::TimingArc* arc =
            inst.cell->findArc("CP", outputPinName(inst, slot));
        assert(arc != nullptr);
        const double delay =
            arc->worstDelay(clock_.clockSlew, load_[out]) * clock_.derateLate;
        arrival_[out] = delay;
        min_arrival_[out] = arc->bestDelay(clock_.clockSlew, load_[out]) *
                            clock_.derateEarly;
        slew_[out] = arc->worstTransition(clock_.clockSlew, load_[out]);
        pred_[out] = Pred{index, arc, 0, delay, clock_.clockSlew};
      }
      continue;
    }

    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const NetIndex out = inst.outputs[slot];
      double bestArrival = -kInf;
      double earliest = kInf;
      double worstSlew = 0.0;
      Pred best;
      for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
        const liberty::TimingArc* arc = inst.cell->findArc(
            inputPinName(inst, i), outputPinName(inst, slot));
        if (arc == nullptr) continue;
        const NetIndex in = inst.inputs[i];
        const double delay =
            arc->worstDelay(slew_[in], load_[out]) * clock_.derateLate;
        const double cand = arrival_[in] + delay;
        if (cand > bestArrival) {
          bestArrival = cand;
          best = Pred{index, arc, i, delay, slew_[in]};
        }
        earliest = std::min(earliest,
                            min_arrival_[in] +
                                arc->bestDelay(slew_[in], load_[out]) *
                                    clock_.derateEarly);
        worstSlew = std::max(
            worstSlew, arc->worstTransition(slew_[in], load_[out]));
      }
      assert(best.arc != nullptr);
      arrival_[out] = bestArrival;
      min_arrival_[out] = earliest;
      slew_[out] = worstSlew;
      pred_[out] = best;
    }
  }
}

void TimingAnalyzer::collectEndpoints() {
  endpoints_.clear();
  worst_slack_ = kInf;
  worst_hold_slack_ = kInf;
  tns_ = 0.0;

  auto finish = [&](Endpoint ep) {
    ep.slack = ep.required - ep.arrival;
    worst_slack_ = std::min(worst_slack_, ep.slack);
    if (ep.slack < 0.0) tns_ += ep.slack;
    endpoints_.push_back(std::move(ep));
  };

  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    const Instance& inst = design_.instance(static_cast<InstIndex>(i));
    if (!inst.alive || !netlist::isSequential(inst.op)) continue;
    for (std::uint32_t slot = 0; slot < inst.inputs.size(); ++slot) {
      Endpoint ep;
      ep.instance = static_cast<InstIndex>(i);
      ep.inputSlot = slot;
      ep.net = inst.inputs[slot];
      ep.name = inst.name + "/" + std::string(inputPinName(inst, slot));
      ep.arrival = arrival_[ep.net];
      ep.required = clock_.effectivePeriod() -
                    inst.cell->setupTime(slew_[ep.net], clock_.clockSlew);
      // Hold: data launched by this edge must not race through before the
      // capturing flop's hold window closes (ideal clock, zero skew).
      ep.minArrival = min_arrival_[ep.net];
      ep.holdSlack = ep.minArrival - inst.cell->holdTime();
      worst_hold_slack_ = std::min(worst_hold_slack_, ep.holdSlack);
      finish(std::move(ep));
    }
  }
  for (const netlist::Port& port : design_.ports()) {
    if (port.direction != netlist::PortDirection::kOutput) continue;
    Endpoint ep;
    ep.net = port.net;
    ep.name = port.name;
    ep.arrival = arrival_[port.net];
    ep.required = clock_.effectivePeriod();
    finish(std::move(ep));
  }
  if (endpoints_.empty()) worst_slack_ = 0.0;
}

void TimingAnalyzer::propagateRequired() {
  required_.assign(design_.netCount(), kInf);
  for (const Endpoint& ep : endpoints_) {
    required_[ep.net] = std::min(required_[ep.net], ep.required);
  }
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const Instance& inst = design_.instance(*it);
    if (netlist::isSequential(inst.op) || netlist::numInputs(inst.op) == 0) {
      continue;
    }
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const NetIndex out = inst.outputs[slot];
      if (required_[out] == kInf) continue;
      for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
        const liberty::TimingArc* arc = inst.cell->findArc(
            inputPinName(inst, i), outputPinName(inst, slot));
        if (arc == nullptr) continue;
        const NetIndex in = inst.inputs[i];
        const double delay =
            arc->worstDelay(slew_[in], load_[out]) * clock_.derateLate;
        required_[in] = std::min(required_[in], required_[out] - delay);
      }
    }
  }
}

bool TimingAnalyzer::analyze() {
  // A mapped design is a precondition; fail cleanly on unmapped instances
  // (e.g. when synthesis could not find usable cells for every function).
  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    const Instance& inst = design_.instance(static_cast<InstIndex>(i));
    if (inst.alive && inst.cell == nullptr) return false;
  }
  computeLoads();
  if (!levelize()) return false;
  propagateArrivals();
  collectEndpoints();
  propagateRequired();
  return true;
}

TimingPath TimingAnalyzer::worstPathTo(const Endpoint& endpoint) const {
  TimingPath path;
  path.endpoint = endpoint;
  NetIndex net = endpoint.net;
  while (net != kNoNet) {
    const Pred& pred = pred_[net];
    if (pred.instance == kNoInst || pred.arc == nullptr) break;  // PI or tie
    const Instance& inst = design_.instance(pred.instance);
    path.steps.push_back(PathStep{pred.instance, inst.cell, pred.arc,
                                  pred.inputSlew, load_[net], pred.delay});
    if (netlist::isSequential(inst.op)) break;  // launching flip-flop
    net = inst.inputs[pred.inputSlot];
  }
  std::reverse(path.steps.begin(), path.steps.end());
  return path;
}

TimingPath TimingAnalyzer::criticalPath() const {
  const Endpoint* worst = nullptr;
  for (const Endpoint& ep : endpoints_) {
    if (worst == nullptr || ep.slack < worst->slack) worst = &ep;
  }
  if (worst == nullptr) return {};
  return worstPathTo(*worst);
}

std::vector<TimingPath> TimingAnalyzer::kWorstPathsTo(
    const Endpoint& endpoint, std::size_t k) const {
  // Best-first backward enumeration: a partial path is a suffix of steps
  // from some net to the endpoint; its bound is the best achievable total
  // arrival (forward arrival at the net plus the suffix delay), which is
  // exact, so paths pop in decreasing-arrival order.
  struct Partial {
    NetIndex net = kNoNet;
    double suffixDelay = 0.0;
    double bound = 0.0;
    std::vector<PathStep> reversedSteps;  // endpoint-side first
  };
  auto worseBound = [](const Partial& a, const Partial& b) {
    return a.bound < b.bound;
  };
  std::priority_queue<Partial, std::vector<Partial>, decltype(worseBound)>
      queue(worseBound);
  queue.push(Partial{endpoint.net, 0.0, arrival_[endpoint.net], {}});

  std::vector<TimingPath> out;
  // Guard against pathological fan-in explosions.
  std::size_t expansions = 0;
  const std::size_t expansionCap = 20000 + 200 * k;
  while (!queue.empty() && out.size() < k && expansions < expansionCap) {
    ++expansions;
    Partial p = queue.top();
    queue.pop();
    const netlist::Net& net = design_.net(p.net);

    auto emit = [&](std::vector<PathStep> steps, double arrivalAtSource) {
      std::reverse(steps.begin(), steps.end());
      TimingPath path;
      path.steps = std::move(steps);
      path.endpoint = endpoint;
      path.endpoint.arrival = arrivalAtSource + p.suffixDelay;
      path.endpoint.slack = path.endpoint.required - path.endpoint.arrival;
      out.push_back(std::move(path));
    };

    if (net.driver == kNoInst) {
      emit(p.reversedSteps, clock_.inputDelay);  // primary-input launch
      continue;
    }
    const Instance& drv = design_.instance(net.driver);
    if (netlist::numInputs(drv.op) == 0) {
      emit(p.reversedSteps, 0.0);  // tie cell
      continue;
    }
    if (netlist::isSequential(drv.op)) {
      const liberty::TimingArc* arc =
          drv.cell->findArc("CP", outputPinName(drv, net.driverSlot));
      if (arc == nullptr) continue;
      const double delay =
          arc->worstDelay(clock_.clockSlew, load_[p.net]) * clock_.derateLate;
      std::vector<PathStep> steps = p.reversedSteps;
      steps.push_back(PathStep{net.driver, drv.cell, arc, clock_.clockSlew,
                               load_[p.net], delay});
      // The launch arrival is the flip-flop's clk->Q delay (the appended
      // step's delay is not folded into suffixDelay, so add it here).
      emit(std::move(steps), delay);
      continue;
    }
    // Combinational driver: branch over every fan-in arc.
    for (std::uint32_t i = 0; i < drv.inputs.size(); ++i) {
      const liberty::TimingArc* arc = drv.cell->findArc(
          inputPinName(drv, i), outputPinName(drv, net.driverSlot));
      if (arc == nullptr) continue;
      const NetIndex in = drv.inputs[i];
      const double delay =
          arc->worstDelay(slew_[in], load_[p.net]) * clock_.derateLate;
      Partial next;
      next.net = in;
      next.suffixDelay = p.suffixDelay + delay;
      next.bound = arrival_[in] + next.suffixDelay;
      next.reversedSteps = p.reversedSteps;
      next.reversedSteps.push_back(PathStep{net.driver, drv.cell, arc,
                                            slew_[in], load_[p.net], delay});
      queue.push(std::move(next));
    }
  }
  return out;
}

std::vector<TimingPath> TimingAnalyzer::endpointWorstPaths() const {
  std::vector<TimingPath> paths;
  paths.reserve(endpoints_.size());
  for (const Endpoint& ep : endpoints_) paths.push_back(worstPathTo(ep));
  return paths;
}

}  // namespace sct::sta
