#pragma once
// Static timing analysis over a mapped design: levelization, load
// computation, slew/arrival propagation through library LUTs, setup checks
// against the clock constraint, and worst-path extraction per endpoint.
// Single-valued worst-case (max of rise/fall) analysis, one ideal clock —
// the same abstraction level as the paper's setup study.
//
// Two update modes share one result state:
//  - analyze(): from-scratch reference analysis.
//  - notifyCellSwap()/notifyBufferInsert()/notifyReconnect() + update():
//    edits are recorded as they happen and drained in one incremental pass
//    that re-propagates only through the affected cone (see DESIGN.md §9).
//    update() produces state bit-identical to analyze().

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/timing_view.hpp"

namespace sct::sta {

/// Pre-layout wire-load model: estimated net capacitance as a function of
/// fanout (Liberty wire_load semantics, simplified to a quadratic fit).
/// The default reproduces a short-reach lumped model; the medium/large
/// presets emulate bigger floorplans where routing dominates.
struct WireLoadModel {
  double capBase = 0.0;         ///< fixed per-net cap [pF]
  double capPerFanout = 0.0015; ///< linear term [pF per sink]
  double capQuadratic = 0.0;    ///< congestion term [pF per sink^2]

  [[nodiscard]] double netCap(std::size_t fanout) const noexcept {
    const double n = static_cast<double>(fanout);
    return fanout == 0 ? 0.0 : capBase + capPerFanout * n +
                                   capQuadratic * n * n;
  }
  [[nodiscard]] static WireLoadModel small() { return {0.0, 0.0015, 0.0}; }
  [[nodiscard]] static WireLoadModel medium() {
    return {0.001, 0.0022, 0.00004};
  }
  [[nodiscard]] static WireLoadModel large() {
    return {0.002, 0.0030, 0.00012};
  }
};

/// Clock and boundary conditions of the analysis.
struct ClockSpec {
  double period = 2.41;       ///< ns
  double uncertainty = 0.30;  ///< guard band subtracted from the period [ns]
                              ///< (paper section VII: 300 ps at 2.41 ns)
  double clockSlew = 0.05;    ///< transition at flip-flop clock pins [ns]
  double inputSlew = 0.05;    ///< transition driven into primary inputs [ns]
  double inputDelay = 0.0;    ///< external arrival at primary inputs [ns]
  double outputLoad = 0.004;  ///< external load on primary outputs [pF]
  WireLoadModel wireLoad{};   ///< pre-layout net-capacitance estimate
  /// On-chip-variation derates (the blanket alternative to statistical
  /// analysis, cf. the paper's reference [10]): every max-path delay is
  /// multiplied by derateLate, every min-path delay by derateEarly.
  double derateLate = 1.0;
  double derateEarly = 1.0;

  /// Data must arrive before this time (excluding per-endpoint setup).
  [[nodiscard]] double effectivePeriod() const noexcept {
    return period - uncertainty;
  }
};

/// A setup endpoint: a sequential data/enable input or a primary output.
/// Diagnostic names are not stored (reports build them on demand via
/// TimingAnalyzer::endpointName()) so per-pass endpoint collection does not
/// allocate strings.
struct Endpoint {
  netlist::InstIndex instance = netlist::kNoInst;  ///< kNoInst => primary out
  std::uint32_t inputSlot = 0;  ///< input slot on the instance
  netlist::NetIndex net = netlist::kNoNet;  ///< the endpoint's data net
  std::uint32_t port = UINT32_MAX;  ///< port index for primary-out endpoints
  double arrival = 0.0;         ///< latest (setup) arrival
  double required = 0.0;
  double slack = 0.0;           ///< setup slack
  double minArrival = 0.0;      ///< earliest arrival (hold analysis)
  double holdSlack = 0.0;       ///< minArrival - hold requirement
};

/// One cell traversal on a timing path, carrying the operating point the
/// statistics layer needs (input slew, output load).
struct PathStep {
  netlist::InstIndex instance = netlist::kNoInst;
  const liberty::Cell* cell = nullptr;
  const liberty::TimingArc* arc = nullptr;
  double inputSlew = 0.0;  ///< slew presented to the arc's related pin
  double load = 0.0;       ///< capacitive load on the arc's output pin
  double delay = 0.0;      ///< worst-edge arc delay at this operating point
};

/// A traced worst path ending at an endpoint. steps.front() is the
/// launching element (flip-flop clk->Q or the first gate after a primary
/// input); steps.size() is the paper's "path depth" in cells.
struct TimingPath {
  std::vector<PathStep> steps;
  Endpoint endpoint;
  [[nodiscard]] std::size_t depth() const noexcept { return steps.size(); }
  [[nodiscard]] double arrival() const noexcept { return endpoint.arrival; }
  [[nodiscard]] double slack() const noexcept { return endpoint.slack; }
};

class TimingAnalyzer {
 public:
  /// The design must be fully mapped (every alive instance bound to a cell).
  /// Compiled timing views for every library cell are built here, once.
  TimingAnalyzer(const netlist::Design& design, const liberty::Library& library,
                 ClockSpec clock);

  /// Full timing update. Returns false when the combinational netlist has a
  /// cycle (analysis results are then invalid).
  bool analyze();

  // --- incremental updates ---------------------------------------------------
  // The owner of the design records edits as it makes them; the records are
  // drained by the next update() call, which re-propagates arrivals, slews,
  // loads and required times only through the cones the edits touch. The
  // notify calls themselves are O(1) — timing state is NOT refreshed until
  // update(), so between edits the analyzer intentionally reports the
  // stale pre-edit timing (the sizing passes rank moves against the
  // start-of-pass snapshot, exactly like repeated full analyze() calls).
  //
  // Instance removal has no notify path: structurally removing logic
  // requires a full analyze().

  /// The instance was re-bound to a different library cell.
  void notifyCellSwap(netlist::InstIndex instance);
  /// A new buffer/inverter instance was added and bound; its output nets
  /// must already be wired. Reconnections of the sinks it now drives are
  /// reported separately via notifyReconnect().
  void notifyBufferInsert(netlist::InstIndex instance);
  /// Input `slot` of `sink` was moved from `previousNet` to its current net.
  void notifyReconnect(netlist::InstIndex sink, std::uint32_t slot,
                       netlist::NetIndex previousNet);

  /// Drains recorded edits and brings all results up to date. Bit-identical
  /// to analyze(); falls back to a full analyze() when there is no valid
  /// baseline. Returns false on the same failures as analyze().
  bool update();

  /// True when notify records are pending (update() has work to do).
  [[nodiscard]] bool hasPendingEdits() const noexcept {
    return !pending_.empty();
  }

  [[nodiscard]] const ClockSpec& clock() const noexcept { return clock_; }
  void setClock(const ClockSpec& clock) noexcept {
    clock_ = clock;
    baseline_valid_ = false;  // every net annotation depends on the clock
  }

  /// Compiled timing views (shared registry; also usable by the synthesis
  /// sizing loop for candidate evaluation).
  [[nodiscard]] const TimingViewRegistry& views() const noexcept {
    return views_;
  }

  /// Toggles level-batched arrival propagation (on by default): whole
  /// levels drain into flat (arc, slew, load) arrays, evaluate in one
  /// contiguous loop and scatter back. Results are bit-identical in both
  /// modes — the scalar per-instance path is the oracle used by
  /// diffAgainstReference() — so the toggle exists for tests and benches.
  void setLevelBatchedPropagation(bool on) noexcept { level_batched_ = on; }
  [[nodiscard]] bool levelBatchedPropagation() const noexcept {
    return level_batched_;
  }

  // --- per-net results -----------------------------------------------------
  // Accessors are bounds-safe: nets created after the last analyze() (e.g.
  // by mid-pass buffer insertion) report neutral defaults until the next
  // update.
  [[nodiscard]] double netLoad(netlist::NetIndex net) const noexcept {
    return net < load_.size() ? load_[net] : 0.0;
  }
  [[nodiscard]] double netArrival(netlist::NetIndex net) const noexcept {
    return net < arrival_.size() ? arrival_[net] : 0.0;
  }
  [[nodiscard]] double netSlew(netlist::NetIndex net) const noexcept {
    return net < slew_.size() ? slew_[net] : clock_.inputSlew;
  }
  /// Earliest possible switch time (min-delay propagation, hold analysis).
  [[nodiscard]] double netMinArrival(netlist::NetIndex net) const noexcept {
    return net < min_arrival_.size() ? min_arrival_[net] : 0.0;
  }
  /// Latest time the net may switch so all downstream endpoints still meet
  /// setup; +inf for nets with no timing endpoints downstream.
  [[nodiscard]] double netRequired(netlist::NetIndex net) const noexcept {
    return net < required_.size() ? required_[net]
                                  : std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] double netSlack(netlist::NetIndex net) const noexcept {
    return netRequired(net) - netArrival(net);
  }

  // --- design summary --------------------------------------------------------
  [[nodiscard]] const std::vector<Endpoint>& endpoints() const noexcept {
    return endpoints_;
  }
  /// Diagnostic label of an endpoint ("inst/D" or the output port name);
  /// built on demand so timing updates never allocate name strings.
  [[nodiscard]] std::string endpointName(const Endpoint& endpoint) const;
  [[nodiscard]] double worstSlack() const noexcept { return worst_slack_; }
  [[nodiscard]] double totalNegativeSlack() const noexcept { return tns_; }
  [[nodiscard]] bool met() const noexcept { return worst_slack_ >= 0.0; }
  /// Worst hold slack over all sequential endpoints (+inf if none).
  [[nodiscard]] double worstHoldSlack() const noexcept {
    return worst_hold_slack_;
  }
  [[nodiscard]] bool holdMet() const noexcept {
    return worst_hold_slack_ >= 0.0;
  }

  /// Instances in combinational topological order (valid after analyze() or
  /// update(); rebuilt by update() after structural edits).
  [[nodiscard]] const std::vector<netlist::InstIndex>& topoOrder()
      const noexcept {
    return topo_;
  }

  // --- verification ----------------------------------------------------------
  /// True when SCT_STA_CHECK=1 asks for incremental-vs-full cross checks.
  [[nodiscard]] static bool crossCheckEnabled();
  /// Compares this analyzer's full result state against a freshly analyzed
  /// reference on the same design. Returns an empty string on bitwise
  /// equality, else a description of the first difference. Expensive; meant
  /// for SCT_STA_CHECK runs and tests.
  [[nodiscard]] std::string diffAgainstReference() const;

  // --- paths ------------------------------------------------------------------
  /// Backtracks the worst path into the endpoint.
  [[nodiscard]] TimingPath worstPathTo(const Endpoint& endpoint) const;
  /// Worst path of the whole design.
  [[nodiscard]] TimingPath criticalPath() const;
  /// One worst path per endpoint (Fig. 12-14 population).
  [[nodiscard]] std::vector<TimingPath> endpointWorstPaths() const;
  /// The k latest-arriving distinct paths into an endpoint, in decreasing
  /// arrival order (best-first enumeration over the timing graph). Each
  /// returned path carries its own arrival/slack in `endpoint`.
  [[nodiscard]] std::vector<TimingPath> kWorstPathsTo(const Endpoint& endpoint,
                                                      std::size_t k) const;

 private:
  struct Pred {
    netlist::InstIndex instance = netlist::kNoInst;
    const liberty::TimingArc* arc = nullptr;
    std::uint32_t inputSlot = 0;
    double delay = 0.0;
    double inputSlew = 0.0;
  };

  /// One recorded netlist edit, drained by update().
  struct PendingEdit {
    enum class Kind : std::uint8_t { kCellSwap, kNewInstance, kReconnect };
    Kind kind = Kind::kCellSwap;
    netlist::InstIndex instance = netlist::kNoInst;
    std::uint32_t slot = 0;                       ///< kReconnect
    netlist::NetIndex oldNet = netlist::kNoNet;   ///< kReconnect
  };

  /// One arc of a level batch: the compiled arc plus the (slew, load)
  /// operating point it was gathered at.
  struct ArcTask {
    const CompiledArc* arc = nullptr;
    double slew = 0.0;
    double load = 0.0;
  };

  void refreshInstanceViews();
  void computeLoads();
  bool levelize();
  /// Dispatches to the scalar or level-batched full sweep (identical bits).
  void propagateArrivals();
  void propagateRequired();
  void collectEndpoints();
  /// Recomputes the output-net annotations (arrival, min arrival, slew,
  /// pred) of one instance from the current input state. When `changedNets`
  /// is non-null, output nets whose (arrival, minArrival, slew) triple
  /// changed bitwise are appended to it. This is the scalar oracle the
  /// batched path is checked against.
  void evalInstance(netlist::InstIndex index,
                    std::vector<netlist::NetIndex>* changedNets);
  /// Appends one ArcTask per timing arc of the instance; enumeration order
  /// is exactly the consumption order of commitInstance(). Returns the
  /// number of tasks appended (0 for tie cells).
  std::size_t gatherInstanceArcs(netlist::InstIndex index,
                                 std::vector<ArcTask>& out) const;
  /// evalInstance() with the arc evaluations already done: consumes one
  /// ArcTiming per gathered arc and runs the identical reduction/commit.
  void commitInstance(netlist::InstIndex index,
                      std::span<const ArcTiming> timings,
                      std::vector<netlist::NetIndex>* changedNets);
  /// Level-batched evaluation of same-level instances: gather → one flat
  /// evaluation loop → per-instance scatter. Instances of one level write
  /// disjoint output nets and read only settled lower-level state, so any
  /// evaluation order yields the scalar path's bits.
  void evalInstancesBatched(std::span<const netlist::InstIndex> instances,
                            std::vector<netlist::NetIndex>* changedNets);
  /// Fresh sink-order load summation of one net (bit-identical to the
  /// per-net body of computeLoads()).
  [[nodiscard]] double recomputeNetLoad(netlist::NetIndex net) const;
  /// Required time of one net from its sinks' current required times
  /// (bit-identical term set to propagateRequired()).
  [[nodiscard]] double recomputeRequired(netlist::NetIndex net) const;
  /// Longest-path level of a combinational instance from its fanin drivers.
  [[nodiscard]] std::uint32_t computeLevel(const netlist::Instance& inst) const;
  /// Rebuilds topo_ from level_ (counting sort by (level, index) — a valid
  /// topological order because levels strictly increase along comb edges).
  void rebuildTopoFromLevels();

  const netlist::Design& design_;
  const liberty::Library& library_;
  ClockSpec clock_;
  TimingViewRegistry views_;

  std::vector<double> load_;
  std::vector<double> arrival_;
  std::vector<double> min_arrival_;
  std::vector<double> slew_;
  std::vector<double> required_;
  std::vector<double> ep_required_;  ///< min endpoint required per net
  std::vector<Pred> pred_;  ///< winning predecessor per net (path tracing)
  std::vector<netlist::InstIndex> topo_;
  std::vector<std::uint32_t> level_;  ///< per instance, 0 for sources
  std::vector<const CompiledCell*> inst_view_;  ///< per instance, bound cell
  std::vector<Endpoint> endpoints_;
  double worst_slack_ = 0.0;
  double tns_ = 0.0;
  double worst_hold_slack_ = 0.0;

  std::vector<PendingEdit> pending_;
  bool baseline_valid_ = false;  ///< results usable as incremental baseline
  bool level_batched_ = true;    ///< level-batched arrival propagation

  // Scratch for evalInstancesBatched(), reused across levels and updates so
  // steady-state propagation does not allocate.
  std::vector<ArcTask> batch_tasks_;
  std::vector<ArcTiming> batch_timings_;
  std::vector<std::uint32_t> batch_counts_;  ///< tasks per batched instance
};

/// Diagnostic label of an endpoint ("inst/D" or the output port name),
/// derived from the design alone — usable without an analyzer instance.
[[nodiscard]] std::string endpointName(const netlist::Design& design,
                                       const Endpoint& endpoint);

/// Pin name on the bound cell for an instance input slot (handles the
/// enable pin of DFFE and the clock-related conventions).
[[nodiscard]] std::string_view inputPinName(const netlist::Instance& inst,
                                            std::uint32_t slot) noexcept;
/// Pin name on the bound cell for an instance output slot.
[[nodiscard]] std::string_view outputPinName(const netlist::Instance& inst,
                                             std::uint32_t slot) noexcept;

}  // namespace sct::sta
