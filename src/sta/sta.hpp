#pragma once
// Static timing analysis over a mapped design: levelization, load
// computation, slew/arrival propagation through library LUTs, setup checks
// against the clock constraint, and worst-path extraction per endpoint.
// Single-valued worst-case (max of rise/fall) analysis, one ideal clock —
// the same abstraction level as the paper's setup study.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"

namespace sct::sta {

/// Pre-layout wire-load model: estimated net capacitance as a function of
/// fanout (Liberty wire_load semantics, simplified to a quadratic fit).
/// The default reproduces a short-reach lumped model; the medium/large
/// presets emulate bigger floorplans where routing dominates.
struct WireLoadModel {
  double capBase = 0.0;         ///< fixed per-net cap [pF]
  double capPerFanout = 0.0015; ///< linear term [pF per sink]
  double capQuadratic = 0.0;    ///< congestion term [pF per sink^2]

  [[nodiscard]] double netCap(std::size_t fanout) const noexcept {
    const double n = static_cast<double>(fanout);
    return fanout == 0 ? 0.0 : capBase + capPerFanout * n +
                                   capQuadratic * n * n;
  }
  [[nodiscard]] static WireLoadModel small() { return {0.0, 0.0015, 0.0}; }
  [[nodiscard]] static WireLoadModel medium() {
    return {0.001, 0.0022, 0.00004};
  }
  [[nodiscard]] static WireLoadModel large() {
    return {0.002, 0.0030, 0.00012};
  }
};

/// Clock and boundary conditions of the analysis.
struct ClockSpec {
  double period = 2.41;       ///< ns
  double uncertainty = 0.30;  ///< guard band subtracted from the period [ns]
                              ///< (paper section VII: 300 ps at 2.41 ns)
  double clockSlew = 0.05;    ///< transition at flip-flop clock pins [ns]
  double inputSlew = 0.05;    ///< transition driven into primary inputs [ns]
  double inputDelay = 0.0;    ///< external arrival at primary inputs [ns]
  double outputLoad = 0.004;  ///< external load on primary outputs [pF]
  WireLoadModel wireLoad{};   ///< pre-layout net-capacitance estimate
  /// On-chip-variation derates (the blanket alternative to statistical
  /// analysis, cf. the paper's reference [10]): every max-path delay is
  /// multiplied by derateLate, every min-path delay by derateEarly.
  double derateLate = 1.0;
  double derateEarly = 1.0;

  /// Data must arrive before this time (excluding per-endpoint setup).
  [[nodiscard]] double effectivePeriod() const noexcept {
    return period - uncertainty;
  }
};

/// A setup endpoint: a sequential data/enable input or a primary output.
struct Endpoint {
  netlist::InstIndex instance = netlist::kNoInst;  ///< kNoInst => primary out
  std::uint32_t inputSlot = 0;  ///< input slot on the instance
  netlist::NetIndex net = netlist::kNoNet;  ///< the endpoint's data net
  std::string name;             ///< diagnostic label
  double arrival = 0.0;         ///< latest (setup) arrival
  double required = 0.0;
  double slack = 0.0;           ///< setup slack
  double minArrival = 0.0;      ///< earliest arrival (hold analysis)
  double holdSlack = 0.0;       ///< minArrival - hold requirement
};

/// One cell traversal on a timing path, carrying the operating point the
/// statistics layer needs (input slew, output load).
struct PathStep {
  netlist::InstIndex instance = netlist::kNoInst;
  const liberty::Cell* cell = nullptr;
  const liberty::TimingArc* arc = nullptr;
  double inputSlew = 0.0;  ///< slew presented to the arc's related pin
  double load = 0.0;       ///< capacitive load on the arc's output pin
  double delay = 0.0;      ///< worst-edge arc delay at this operating point
};

/// A traced worst path ending at an endpoint. steps.front() is the
/// launching element (flip-flop clk->Q or the first gate after a primary
/// input); steps.size() is the paper's "path depth" in cells.
struct TimingPath {
  std::vector<PathStep> steps;
  Endpoint endpoint;
  [[nodiscard]] std::size_t depth() const noexcept { return steps.size(); }
  [[nodiscard]] double arrival() const noexcept { return endpoint.arrival; }
  [[nodiscard]] double slack() const noexcept { return endpoint.slack; }
};

class TimingAnalyzer {
 public:
  /// The design must be fully mapped (every alive instance bound to a cell).
  TimingAnalyzer(const netlist::Design& design, const liberty::Library& library,
                 ClockSpec clock);

  /// Full timing update. Returns false when the combinational netlist has a
  /// cycle (analysis results are then invalid).
  bool analyze();

  [[nodiscard]] const ClockSpec& clock() const noexcept { return clock_; }
  void setClock(const ClockSpec& clock) noexcept { clock_ = clock; }

  // --- per-net results -----------------------------------------------------
  // Accessors are bounds-safe: nets created after the last analyze() (e.g.
  // by mid-pass buffer insertion) report neutral defaults until the next
  // full update.
  [[nodiscard]] double netLoad(netlist::NetIndex net) const noexcept {
    return net < load_.size() ? load_[net] : 0.0;
  }
  [[nodiscard]] double netArrival(netlist::NetIndex net) const noexcept {
    return net < arrival_.size() ? arrival_[net] : 0.0;
  }
  [[nodiscard]] double netSlew(netlist::NetIndex net) const noexcept {
    return net < slew_.size() ? slew_[net] : clock_.inputSlew;
  }
  /// Earliest possible switch time (min-delay propagation, hold analysis).
  [[nodiscard]] double netMinArrival(netlist::NetIndex net) const noexcept {
    return net < min_arrival_.size() ? min_arrival_[net] : 0.0;
  }
  /// Latest time the net may switch so all downstream endpoints still meet
  /// setup; +inf for nets with no timing endpoints downstream.
  [[nodiscard]] double netRequired(netlist::NetIndex net) const noexcept {
    return net < required_.size() ? required_[net]
                                  : std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] double netSlack(netlist::NetIndex net) const noexcept {
    return netRequired(net) - netArrival(net);
  }

  // --- design summary --------------------------------------------------------
  [[nodiscard]] const std::vector<Endpoint>& endpoints() const noexcept {
    return endpoints_;
  }
  [[nodiscard]] double worstSlack() const noexcept { return worst_slack_; }
  [[nodiscard]] double totalNegativeSlack() const noexcept { return tns_; }
  [[nodiscard]] bool met() const noexcept { return worst_slack_ >= 0.0; }
  /// Worst hold slack over all sequential endpoints (+inf if none).
  [[nodiscard]] double worstHoldSlack() const noexcept {
    return worst_hold_slack_;
  }
  [[nodiscard]] bool holdMet() const noexcept {
    return worst_hold_slack_ >= 0.0;
  }

  /// Instances in combinational topological order (valid after analyze()).
  [[nodiscard]] const std::vector<netlist::InstIndex>& topoOrder()
      const noexcept {
    return topo_;
  }

  // --- paths ------------------------------------------------------------------
  /// Backtracks the worst path into the endpoint.
  [[nodiscard]] TimingPath worstPathTo(const Endpoint& endpoint) const;
  /// Worst path of the whole design.
  [[nodiscard]] TimingPath criticalPath() const;
  /// One worst path per endpoint (Fig. 12-14 population).
  [[nodiscard]] std::vector<TimingPath> endpointWorstPaths() const;
  /// The k latest-arriving distinct paths into an endpoint, in decreasing
  /// arrival order (best-first enumeration over the timing graph). Each
  /// returned path carries its own arrival/slack in `endpoint`.
  [[nodiscard]] std::vector<TimingPath> kWorstPathsTo(const Endpoint& endpoint,
                                                      std::size_t k) const;

 private:
  struct Pred {
    netlist::InstIndex instance = netlist::kNoInst;
    const liberty::TimingArc* arc = nullptr;
    std::uint32_t inputSlot = 0;
    double delay = 0.0;
    double inputSlew = 0.0;
  };

  void computeLoads();
  bool levelize();
  void propagateArrivals();
  void propagateRequired();
  void collectEndpoints();

  const netlist::Design& design_;
  const liberty::Library& library_;
  ClockSpec clock_;

  std::vector<double> load_;
  std::vector<double> arrival_;
  std::vector<double> min_arrival_;
  std::vector<double> slew_;
  std::vector<double> required_;
  std::vector<Pred> pred_;  ///< winning predecessor per net (path tracing)
  std::vector<netlist::InstIndex> topo_;
  std::vector<Endpoint> endpoints_;
  double worst_slack_ = 0.0;
  double tns_ = 0.0;
  double worst_hold_slack_ = 0.0;
};

/// Pin name on the bound cell for an instance input slot (handles the
/// enable pin of DFFE and the clock-related conventions).
[[nodiscard]] std::string_view inputPinName(const netlist::Instance& inst,
                                            std::uint32_t slot) noexcept;
/// Pin name on the bound cell for an instance output slot.
[[nodiscard]] std::string_view outputPinName(const netlist::Instance& inst,
                                             std::uint32_t slot) noexcept;

}  // namespace sct::sta
