#include "sta/report.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace sct::sta {
namespace {

void writeSummary(std::ostream& out, const netlist::Design& design,
                  const TimingAnalyzer& sta) {
  const ClockSpec& clock = sta.clock();
  out << "Design           : " << design.name() << "\n";
  out << "Clock period     : " << clock.period << " ns (uncertainty "
      << clock.uncertainty << " ns)\n";
  out << "Gates            : " << design.gateCount() << "\n";
  out << "Total cell area  : " << design.totalArea() << " um^2\n";
  out << "Endpoints        : " << sta.endpoints().size() << "\n";
  out << "Setup WNS        : " << sta.worstSlack() << " ns ("
      << (sta.met() ? "MET" : "VIOLATED") << ")\n";
  out << "Setup TNS        : " << sta.totalNegativeSlack() << " ns\n";
  out << "Hold  WNS        : " << sta.worstHoldSlack() << " ns ("
      << (sta.holdMet() ? "MET" : "VIOLATED") << ")\n";
}

void writeAreaBreakdown(std::ostream& out, const netlist::Design& design) {
  std::map<liberty::CellCategory, std::pair<std::size_t, double>> byCategory;
  for (const netlist::Instance& inst : design.instances()) {
    if (!inst.alive || inst.cell == nullptr) continue;
    auto& [count, area] = byCategory[inst.cell->category()];
    ++count;
    area += inst.cell->area();
  }
  out << "\nArea by category\n";
  out << "  " << std::left << std::setw(14) << "category" << std::right
      << std::setw(9) << "cells" << std::setw(14) << "area [um^2]"
      << std::setw(9) << "share" << "\n";
  const double total = design.totalArea();
  for (const auto& [category, entry] : byCategory) {
    out << "  " << std::left << std::setw(14) << liberty::toString(category)
        << std::right << std::setw(9) << entry.first << std::setw(14)
        << std::fixed << std::setprecision(1) << entry.second << std::setw(8)
        << std::setprecision(1) << (100.0 * entry.second / total) << "%\n";
  }
  out.unsetf(std::ios::fixed);
  out << std::setprecision(6);
}

void writeSlackHistogram(std::ostream& out, const TimingAnalyzer& sta,
                         std::size_t bins) {
  const auto& endpoints = sta.endpoints();
  if (endpoints.empty() || bins == 0) return;
  double lo = endpoints.front().slack;
  double hi = lo;
  for (const Endpoint& ep : endpoints) {
    lo = std::min(lo, ep.slack);
    hi = std::max(hi, ep.slack);
  }
  if (hi <= lo) hi = lo + 1e-9;
  std::vector<std::size_t> counts(bins, 0);
  for (const Endpoint& ep : endpoints) {
    auto bin = static_cast<std::size_t>((ep.slack - lo) / (hi - lo) *
                                        static_cast<double>(bins));
    ++counts[std::min(bin, bins - 1)];
  }
  std::size_t peak = 1;
  for (std::size_t c : counts) peak = std::max(peak, c);
  out << "\nEndpoint slack histogram [" << lo << " .. " << hi << " ns]\n";
  for (std::size_t b = 0; b < bins; ++b) {
    const double binLo = lo + (hi - lo) * static_cast<double>(b) /
                                  static_cast<double>(bins);
    const auto width = static_cast<std::size_t>(
        40.0 * static_cast<double>(counts[b]) / static_cast<double>(peak));
    out << "  " << std::setw(9) << std::fixed << std::setprecision(3) << binLo
        << " | " << std::string(width, '#') << " " << counts[b] << "\n";
  }
  out.unsetf(std::ios::fixed);
  out << std::setprecision(6);
}

void writeCriticalPaths(std::ostream& out, const TimingAnalyzer& sta,
                        std::size_t count) {
  // Rank endpoints by slack.
  std::vector<const Endpoint*> ranked;
  ranked.reserve(sta.endpoints().size());
  for (const Endpoint& ep : sta.endpoints()) ranked.push_back(&ep);
  std::sort(ranked.begin(), ranked.end(),
            [](const Endpoint* a, const Endpoint* b) {
              return a->slack < b->slack;
            });
  count = std::min(count, ranked.size());
  for (std::size_t p = 0; p < count; ++p) {
    const Endpoint& ep = *ranked[p];
    const TimingPath path = sta.worstPathTo(ep);
    out << "\nCritical path " << (p + 1) << ": " << sta.endpointName(ep)
        << " (slack "
        << ep.slack << " ns, depth " << path.depth() << ")\n";
    out << "  " << std::left << std::setw(12) << "cell" << std::setw(10)
        << "arc" << std::right << std::setw(10) << "incr" << std::setw(10)
        << "arrive" << std::setw(10) << "load" << "\n";
    double cumulative = 0.0;
    for (const PathStep& step : path.steps) {
      cumulative += step.delay;
      out << "  " << std::left << std::setw(12) << step.cell->name()
          << std::setw(10)
          << (step.arc->relatedPin + ">" + step.arc->outputPin) << std::right
          << std::setw(10) << std::fixed << std::setprecision(4) << step.delay
          << std::setw(10) << cumulative << std::setw(10) << step.load
          << "\n";
      out.unsetf(std::ios::fixed);
      out << std::setprecision(6);
    }
    out << "  required " << ep.required << " ns, arrival " << ep.arrival
        << " ns\n";
  }
}

}  // namespace

void writeTimingReport(std::ostream& out, const netlist::Design& design,
                       const TimingAnalyzer& sta,
                       const ReportOptions& options) {
  out << "==== sctune timing report ====\n";
  writeSummary(out, design, sta);
  writeAreaBreakdown(out, design);
  writeSlackHistogram(out, sta, options.histogramBins);
  writeCriticalPaths(out, sta, options.criticalPaths);
}

std::string timingReportToString(const netlist::Design& design,
                                 const TimingAnalyzer& sta,
                                 const ReportOptions& options) {
  std::ostringstream out;
  writeTimingReport(out, design, sta, options);
  return out.str();
}

}  // namespace sct::sta
