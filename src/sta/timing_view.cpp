#include "sta/timing_view.hpp"

#include <algorithm>

#include "liberty/function.hpp"

namespace sct::sta {

namespace {

[[nodiscard]] bool sharesAxes(const liberty::Lut& a,
                              const liberty::Lut& b) noexcept {
  return !a.empty() && a.sameShape(b);
}

}  // namespace

const CompiledArc CompiledCell::kNoArc{};

CompiledArc::CompiledArc(const liberty::TimingArc* arc) : arc_(arc) {
  if (arc_ == nullptr) return;
  shared_delay_axes_ = sharesAxes(arc_->riseDelay, arc_->fallDelay);
  shared_transition_axes_ =
      sharesAxes(arc_->riseTransition, arc_->fallTransition);
  shared_axes_ = shared_delay_axes_ && shared_transition_axes_ &&
                 arc_->riseDelay.sameShape(arc_->riseTransition);
}

ArcTiming CompiledArc::evaluate(double slew, double load) const noexcept {
  ArcTiming out;
  if (!shared_axes_) {
    out.worstDelay = arc_->worstDelay(slew, load);
    out.bestDelay = arc_->bestDelay(slew, load);
    out.worstTransition = arc_->worstTransition(slew, load);
    return out;
  }
  const numeric::InterpCoords coords = numeric::interpCoords(
      arc_->riseDelay.slewAxis(), arc_->riseDelay.loadAxis(), slew, load);
  const double rise = coords.apply(arc_->riseDelay.values());
  const double fall = coords.apply(arc_->fallDelay.values());
  out.worstDelay = std::max(rise, fall);
  out.bestDelay = std::min(rise, fall);
  out.worstTransition = std::max(coords.apply(arc_->riseTransition.values()),
                                 coords.apply(arc_->fallTransition.values()));
  return out;
}

double CompiledArc::worstDelay(double slew, double load) const noexcept {
  if (!shared_delay_axes_) return arc_->worstDelay(slew, load);
  const numeric::InterpCoords coords = numeric::interpCoords(
      arc_->riseDelay.slewAxis(), arc_->riseDelay.loadAxis(), slew, load);
  return std::max(coords.apply(arc_->riseDelay.values()),
                  coords.apply(arc_->fallDelay.values()));
}

double CompiledArc::worstTransition(double slew, double load) const noexcept {
  if (!shared_transition_axes_) return arc_->worstTransition(slew, load);
  const numeric::InterpCoords coords =
      numeric::interpCoords(arc_->riseTransition.slewAxis(),
                            arc_->riseTransition.loadAxis(), slew, load);
  return std::max(coords.apply(arc_->riseTransition.values()),
                  coords.apply(arc_->fallTransition.values()));
}

CompiledCell::CompiledCell(const liberty::Cell& cell) : cell_(&cell) {
  const liberty::FunctionTraits& t = liberty::traits(cell.function());
  const auto inputNames = liberty::dataInputNames(cell.function());
  const auto outputNames = liberty::outputNames(cell.function());
  num_inputs_ = t.numDataInputs;
  num_outputs_ = t.numOutputs;

  arcs_.resize(num_inputs_ * num_outputs_);
  for (std::size_t i = 0; i < num_inputs_; ++i) {
    for (std::size_t o = 0; o < num_outputs_; ++o) {
      arcs_[i * num_outputs_ + o] =
          CompiledArc(cell.findArc(inputNames[i], outputNames[o]));
    }
  }
  for (std::size_t o = 0; o < num_outputs_ && o < clock_arcs_.size(); ++o) {
    clock_arcs_[o] = CompiledArc(cell.findArc("CP", outputNames[o]));
  }

  input_cap_.resize(num_inputs_, 0.0);
  for (std::size_t i = 0; i < num_inputs_; ++i) {
    input_cap_[i] = cell.inputCapacitance(inputNames[i]);
  }
  seq_input_cap_ = {cell.inputCapacitance("D"), cell.inputCapacitance("E")};

  max_load_.resize(num_outputs_, 0.0);
  for (std::size_t o = 0; o < num_outputs_; ++o) {
    if (const liberty::Pin* pin = cell.findPin(outputNames[o])) {
      max_load_[o] = pin->maxCapacitance;
    }
  }
}

TimingViewRegistry::TimingViewRegistry(const liberty::Library& library) {
  // Cells compile lazily on first bind — a design uses a small subset of
  // the library, and analyzers are constructed per synthesis run. Sizing
  // the table for the library keeps rehashing (and the unique_ptr
  // addresses, by bucket stability) out of the hot loops.
  views_.reserve(library.cells().size());
}

const CompiledCell& TimingViewRegistry::of(const liberty::Cell& cell) const {
  auto it = views_.find(&cell);
  if (it == views_.end()) {
    it = views_.emplace(&cell, std::make_unique<CompiledCell>(cell)).first;
  }
  return *it->second;
}

}  // namespace sct::sta
