#pragma once
// Human-readable timing/area reports in the style of a signoff STA tool:
// design summary, per-category area breakdown, slack histogram, and the
// top-N critical paths with a per-cell trace (cell, arc, incremental delay,
// cumulative arrival).

#include <iosfwd>
#include <string>

#include "sta/sta.hpp"

namespace sct::sta {

struct ReportOptions {
  std::size_t criticalPaths = 3;   ///< full traces to print
  std::size_t histogramBins = 10;  ///< slack histogram resolution
};

/// Writes the full report; the analyzer must have been analyze()d.
void writeTimingReport(std::ostream& out, const netlist::Design& design,
                       const TimingAnalyzer& sta,
                       const ReportOptions& options = {});

[[nodiscard]] std::string timingReportToString(
    const netlist::Design& design, const TimingAnalyzer& sta,
    const ReportOptions& options = {});

}  // namespace sct::sta
