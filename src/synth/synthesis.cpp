#include "synth/synthesis.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>

#include "netlist/analysis.hpp"
#include "synth/decompose.hpp"
#include "synth/pattern_map.hpp"

namespace sct::synth {

using liberty::Cell;
using netlist::Design;
using netlist::InstIndex;
using netlist::kNoInst;
using netlist::kNoNet;
using netlist::NetIndex;
using netlist::PrimOp;
using tuning::PinWindow;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kMinBenefit = 5e-4;  // 0.5 ps

/// All primitive ops, for family construction.
constexpr PrimOp kAllOps[] = {
    PrimOp::kConst0, PrimOp::kConst1, PrimOp::kInv,    PrimOp::kBuf,
    PrimOp::kNand2,  PrimOp::kNand2B, PrimOp::kNand3,  PrimOp::kNand4,
    PrimOp::kNor2,   PrimOp::kNor2B,  PrimOp::kNor3,   PrimOp::kNor4,
    PrimOp::kAnd2,   PrimOp::kAnd3,
    PrimOp::kAnd4,   PrimOp::kOr2,    PrimOp::kOr3,    PrimOp::kOr4,
    PrimOp::kXor2,   PrimOp::kXnor2,  PrimOp::kMux2,   PrimOp::kMux4,
    PrimOp::kHalfAdder,
    PrimOp::kFullAdder, PrimOp::kDff, PrimOp::kDffR,   PrimOp::kDffE};

}  // namespace

Synthesizer::Synthesizer(const liberty::Library& library,
                         const tuning::LibraryConstraints* constraints)
    : library_(library), constraints_(constraints) {
  if (constraints_ != nullptr && !constraints_->empty()) {
    compiled_.emplace(*constraints_, library_);
  }
  for (PrimOp op : kAllOps) {
    std::vector<const Cell*> cells =
        library_.family(netlist::defaultFunction(op));
    if (constraints_ != nullptr) {
      std::erase_if(cells, [&](const Cell* c) {
        return !constraints_->cellUsable(c->name());
      });
    }
    families_[op] = std::move(cells);
  }
}

const std::vector<const Cell*>& Synthesizer::family(PrimOp op) const {
  static const std::vector<const Cell*> kEmpty;
  const auto it = families_.find(op);
  return it != families_.end() ? it->second : kEmpty;
}

namespace {

/// Working state of one synthesis run.
class Session {
 public:
  Session(const Synthesizer& synth, const tuning::LibraryConstraints* constraints,
          Design& design, const sta::ClockSpec& clock,
          const SynthesisOptions& options, SynthesisResult& result)
      : synth_(synth),
        constraints_(constraints),
        view_(options.compiledConstraintWindows ? synth.compiledConstraints()
                                                : nullptr),
        design_(design),
        options_(options),
        result_(result),
        analyzer_(design, synth.library(), clock) {}

  bool mapInitial();
  void optimize();
  void finalize();

 private:
  // --- constraint helpers ---------------------------------------------------
  /// Tuned window of a cell's output slot; nullptr when unconstrained. Hot
  /// path goes through the slot-interned compiled view (one pointer hash);
  /// the string fallback is the benchmark baseline.
  [[nodiscard]] const PinWindow* windowOf(const Cell& cell,
                                          std::uint32_t outSlot) const {
    if (view_ != nullptr) return view_->window(cell, outSlot);
    if (constraints_ == nullptr) return nullptr;
    slow_ = constraints_->window(
        cell.name(), liberty::outputNames(cell.function())[outSlot]);
    return slow_ ? &*slow_ : nullptr;
  }

  /// Max load the cell may drive on this output slot (electrical + window).
  [[nodiscard]] double maxLoadOf(const Cell& cell,
                                 std::uint32_t outSlot) const {
    double limit = kInf;
    const double mc = analyzer_.views().of(cell).maxLoad(outSlot);
    if (mc > 0.0) limit = mc;
    if (const auto* w = windowOf(cell, outSlot)) {
      limit = std::min(limit, w->maxLoad);
    }
    return limit;
  }
  [[nodiscard]] double minLoadOf(const Cell& cell,
                                 std::uint32_t outSlot) const {
    const auto* w = windowOf(cell, outSlot);
    return w != nullptr ? w->minLoad : 0.0;
  }

  /// True when the cell's input-slew window accepts the instance's current
  /// input slews for arcs into this output slot.
  [[nodiscard]] bool slewsAccepted(const netlist::Instance& inst,
                                   const Cell& cell,
                                   std::uint32_t outSlot) const {
    const auto* w = windowOf(cell, outSlot);
    if (w == nullptr) return true;
    for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
      if (netlist::isSequential(inst.op)) break;  // clock slew is fixed
      const double s = analyzer_.netSlew(inst.inputs[i]);
      if (s > w->maxSlew || s < w->minSlew) return false;
    }
    return true;
  }

  /// Strictest transition limit a net's sinks impose on its slew.
  [[nodiscard]] double netSlewLimit(NetIndex net) const {
    double limit = options_.maxSlew;
    for (const netlist::SinkRef& sink : design_.net(net).sinks) {
      const netlist::Instance& inst = design_.instance(sink.instance);
      if (!inst.alive || inst.cell == nullptr) continue;
      if (netlist::isSequential(inst.op)) continue;
      for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
        if (const auto* w = windowOf(*inst.cell, slot)) {
          limit = std::min(limit, w->maxSlew);
        }
      }
    }
    return limit;
  }

  /// Worst arc delay of an instance's output at a hypothetical load, with
  /// current input slews and a hypothetical cell binding. Candidate cells
  /// are evaluated through their compiled views, so the sizing loop never
  /// compares pin-name strings.
  [[nodiscard]] double worstDelayAt(const netlist::Instance& inst,
                                    const Cell& cell, std::uint32_t outSlot,
                                    double load) const {
    const sta::CompiledCell& view = analyzer_.views().of(cell);
    if (netlist::isSequential(inst.op)) {
      const sta::CompiledArc& arc = view.clockArc(outSlot);
      return arc ? arc.worstDelay(analyzer_.clock().clockSlew, load) : 0.0;
    }
    double worst = 0.0;
    for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
      const sta::CompiledArc& arc = view.arc(i, outSlot);
      if (!arc) continue;
      worst = std::max(
          worst, arc.worstDelay(analyzer_.netSlew(inst.inputs[i]), load));
    }
    return worst;
  }

  [[nodiscard]] double worstTransitionAt(const netlist::Instance& inst,
                                         const Cell& cell,
                                         std::uint32_t outSlot,
                                         double load) const {
    const sta::CompiledCell& view = analyzer_.views().of(cell);
    if (netlist::isSequential(inst.op)) {
      const sta::CompiledArc& arc = view.clockArc(outSlot);
      return arc ? arc.worstTransition(analyzer_.clock().clockSlew, load)
                 : 0.0;
    }
    double worst = 0.0;
    for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
      const sta::CompiledArc& arc = view.arc(i, outSlot);
      if (!arc) continue;
      worst = std::max(worst, arc.worstTransition(
                                  analyzer_.netSlew(inst.inputs[i]), load));
    }
    return worst;
  }

  /// Worst delay and worst transition of an output slot at one hypothetical
  /// (cell, load) point. The compiled shared-axis evaluator feeds both
  /// quantities from a single axis search per arc — half the lookups of
  /// calling worstDelayAt and worstTransitionAt separately, bit-identical
  /// results.
  [[nodiscard]] std::pair<double, double> delayAndTransitionAt(
      const netlist::Instance& inst, const Cell& cell, std::uint32_t outSlot,
      double load) const {
    const sta::CompiledCell& view = analyzer_.views().of(cell);
    if (netlist::isSequential(inst.op)) {
      const sta::CompiledArc& arc = view.clockArc(outSlot);
      if (!arc) return {0.0, 0.0};
      const sta::ArcTiming t = arc.evaluate(analyzer_.clock().clockSlew, load);
      return {t.worstDelay, t.worstTransition};
    }
    double delay = 0.0;
    double trans = 0.0;
    for (std::uint32_t i = 0; i < inst.inputs.size(); ++i) {
      const sta::CompiledArc& arc = view.arc(i, outSlot);
      if (!arc) continue;
      const sta::ArcTiming t =
          arc.evaluate(analyzer_.netSlew(inst.inputs[i]), load);
      delay = std::max(delay, t.worstDelay);
      trans = std::max(trans, t.worstTransition);
    }
    return {delay, trans};
  }

  /// Marginal delay per added load of the driver of `net` (0 for primary
  /// inputs): used to price the input-capacitance cost of upsizing.
  [[nodiscard]] double driverResistance(NetIndex net) const {
    const netlist::Net& n = design_.net(net);
    if (n.driver == kNoInst) return 0.0;
    const netlist::Instance& drv = design_.instance(n.driver);
    if (drv.cell == nullptr) return 0.0;
    const double load = analyzer_.netLoad(net);
    const double delta = 5e-4;  // 0.5 fF probe
    const double d0 = worstDelayAt(drv, *drv.cell, n.driverSlot, load);
    const double d1 = worstDelayAt(drv, *drv.cell, n.driverSlot, load + delta);
    return (d1 - d0) / delta;
  }

  /// Candidate legality at the instance's current operating point.
  [[nodiscard]] bool candidateLegal(const netlist::Instance& inst,
                                    const Cell& cell) const {
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const double load = analyzer_.netLoad(inst.outputs[slot]);
      if (load > maxLoadOf(cell, slot) || load < minLoadOf(cell, slot)) {
        return false;
      }
      if (!slewsAccepted(inst, cell, slot)) return false;
      if (worstTransitionAt(inst, cell, slot, load) >
          netSlewLimit(inst.outputs[slot])) {
        return false;
      }
    }
    return true;
  }

  void resize(InstIndex index, const Cell* cell) {
    design_.bindCell(index, cell);
    analyzer_.notifyCellSwap(index);
    ++result_.resizes;
  }

  /// Brings the analyzer up to date at a pass boundary: incrementally
  /// (draining the edits the previous pass recorded) or from scratch when
  /// options disable the incremental path. With SCT_STA_CHECK=1 every
  /// incremental refresh is cross-checked against a fresh full analysis.
  bool refreshTiming() {
    const bool ok =
        options_.incrementalSta ? analyzer_.update() : analyzer_.analyze();
    if (ok && options_.incrementalSta &&
        sta::TimingAnalyzer::crossCheckEnabled()) {
      const std::string diff = analyzer_.diffAgainstReference();
      if (!diff.empty()) {
        std::fprintf(stderr,
                     "SCT_STA_CHECK: incremental STA diverged from full "
                     "analyze(): %s\n",
                     diff.c_str());
        std::abort();
      }
    }
    return ok;
  }

  // --- optimization stages -----------------------------------------------
  std::size_t fixFanout();
  std::size_t fixElectrical();
  std::size_t improveTiming();
  std::size_t recoverArea();
  void splitNet(NetIndex net, std::size_t groups);
  [[nodiscard]] const Cell* bufferCellFor(double load) const;

  const Synthesizer& synth_;
  const tuning::LibraryConstraints* constraints_;
  const tuning::CompiledConstraintView* view_;
  /// Scratch for the string-path fallback of windowOf (Session is
  /// single-threaded; the pointer it returns is consumed immediately).
  mutable std::optional<PinWindow> slow_;
  Design& design_;
  const SynthesisOptions& options_;
  SynthesisResult& result_;
  sta::TimingAnalyzer analyzer_;
  std::set<InstIndex> noDownsize_;
  std::size_t analyzedNets_ = 0;
};

bool Session::mapInitial() {
  // Remove logic no output or register observes (generated subject graphs
  // carry unused carry-outs etc.); real synthesis sweeps these too.
  netlist::sweepDeadLogic(design_);
  const auto usable = [this](PrimOp op) { return !synth_.family(op).empty(); };
  const long rewritten = decomposeUnusable(design_, usable);
  if (rewritten < 0) return false;
  result_.decomposed = static_cast<std::size_t>(rewritten);
  // Absorb single-fanout inverters into B-variant cells and collapse
  // 2-level mux trees into MUX4 (classic mapping patterns; see Fig. 9).
  result_.patternRewrites = mapPatterns(design_, usable).total();

  for (InstIndex i = 0; i < design_.instanceCount(); ++i) {
    const netlist::Instance& inst = design_.instance(i);
    if (!inst.alive) continue;
    const auto& fam = synth_.family(inst.op);
    if (fam.empty()) return false;
    // Start lean: the smallest usable drive strength; the sizing loop grows
    // cells as timing and electrical constraints demand.
    design_.bindCell(i, fam.front());
  }
  return true;
}

const Cell* Session::bufferCellFor(double load) const {
  // Prefer real buffers; tuned libraries may leave none usable, in which
  // case the caller falls back to inverter pairs (paper section VII.A).
  const auto& bufs = synth_.family(PrimOp::kBuf);
  for (const Cell* c : bufs) {
    if (load <= 0.6 * maxLoadOf(*c, 0) && load >= minLoadOf(*c, 0)) {
      return c;
    }
  }
  return bufs.empty() ? nullptr : bufs.back();
}

void Session::splitNet(NetIndex net, std::size_t groups) {
  // Copy: reconnect mutates the sink list.
  const std::vector<netlist::SinkRef> sinks = design_.net(net).sinks;
  if (sinks.size() < 2 || groups < 2) return;
  groups = std::min(groups, sinks.size());
  const std::size_t perGroup = (sinks.size() + groups - 1) / groups;

  const auto& invFam = synth_.family(PrimOp::kInv);
  const bool useInvPair = synth_.family(PrimOp::kBuf).empty();
  if (useInvPair && invFam.empty()) return;  // nothing we can do

  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t begin = g * perGroup;
    if (begin >= sinks.size()) break;
    const std::size_t end = std::min(begin + perGroup, sinks.size());

    NetIndex stage = net;
    if (useInvPair) {
      const NetIndex mid = design_.addNet(design_.freshName("bufn"));
      const NetIndex out = design_.addNet(design_.freshName("bufn"));
      const InstIndex i1 = design_.addInstance(design_.freshName("sibuf"),
                                               PrimOp::kInv, {stage}, {mid});
      const InstIndex i2 = design_.addInstance(design_.freshName("sibuf"),
                                               PrimOp::kInv, {mid}, {out});
      design_.bindCell(i1, invFam.front());
      design_.bindCell(i2, invFam.front());
      analyzer_.notifyBufferInsert(i1);
      analyzer_.notifyBufferInsert(i2);
      stage = out;
      result_.buffersInserted += 2;
    } else {
      const NetIndex out = design_.addNet(design_.freshName("bufn"));
      const InstIndex ib = design_.addInstance(design_.freshName("sibuf"),
                                               PrimOp::kBuf, {stage}, {out});
      const Cell* bc = bufferCellFor(0.0);
      assert(bc != nullptr);
      design_.bindCell(ib, bc);
      analyzer_.notifyBufferInsert(ib);
      stage = out;
      ++result_.buffersInserted;
    }
    for (std::size_t s = begin; s < end; ++s) {
      design_.reconnectInput(sinks[s].instance, sinks[s].inputSlot, stage);
      analyzer_.notifyReconnect(sinks[s].instance, sinks[s].inputSlot, net);
    }
  }
}

std::size_t Session::fixFanout() {
  std::size_t changes = 0;
  const std::size_t preCount = design_.netCount();
  for (NetIndex n = 0; n < preCount; ++n) {
    const netlist::Net& net = design_.net(n);
    if (net.sinks.size() <= options_.maxFanout) continue;
    const std::size_t groups =
        (net.sinks.size() + options_.maxFanout - 1) / options_.maxFanout;
    splitNet(n, groups);
    ++changes;
  }
  return changes;
}

std::size_t Session::fixElectrical() {
  std::size_t changes = 0;
  const std::size_t preInst = design_.instanceCount();
  const std::size_t preNets = design_.netCount();
  for (InstIndex i = 0; i < preInst; ++i) {
    const netlist::Instance& inst = design_.instance(i);
    if (!inst.alive || inst.cell == nullptr) continue;
    const auto& fam = synth_.family(inst.op);
    if (fam.empty()) continue;

    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const NetIndex out = inst.outputs[slot];
      if (out >= preNets) continue;  // created this pass; next pass
      const double load = analyzer_.netLoad(out);
      const double slewLimit = netSlewLimit(out);

      const bool loadHigh = load > maxLoadOf(*inst.cell, slot);
      const bool loadLow = load < minLoadOf(*inst.cell, slot);
      const bool slewHigh =
          worstTransitionAt(inst, *inst.cell, slot, load) > slewLimit;
      if (!loadHigh && !loadLow && !slewHigh) continue;

      // Find the smallest family member that fixes all three conditions.
      const Cell* best = nullptr;
      for (const Cell* c : fam) {
        if (load > maxLoadOf(*c, slot) || load < minLoadOf(*c, slot)) {
          continue;
        }
        if (!slewsAccepted(inst, *c, slot)) continue;
        if (worstTransitionAt(inst, *c, slot, load) > slewLimit) continue;
        best = c;
        break;
      }
      if (best != nullptr && best != inst.cell) {
        resize(i, best);
        noDownsize_.insert(i);
        ++changes;
      } else if (best == nullptr && (loadHigh || slewHigh) &&
                 design_.net(out).sinks.size() > 1) {
        // No size fits: split the fanout and retry next pass.
        splitNet(out, 2);
        ++changes;
      }
      break;  // re-evaluate multi-output cells next pass
    }
  }
  return changes;
}

std::size_t Session::improveTiming() {
  // Candidate instances: negative slack through their output.
  std::vector<std::pair<double, InstIndex>> critical;
  for (InstIndex i = 0; i < design_.instanceCount(); ++i) {
    const netlist::Instance& inst = design_.instance(i);
    if (!inst.alive || inst.cell == nullptr) continue;
    double slack = kInf;
    for (NetIndex out : inst.outputs) {
      slack = std::min(slack, analyzer_.netSlack(out));
    }
    if (slack < 0.0) critical.emplace_back(slack, i);
  }
  std::sort(critical.begin(), critical.end());

  std::size_t changes = 0;
  for (const auto& [slack, i] : critical) {
    const netlist::Instance& inst = design_.instance(i);
    const auto& fam = synth_.family(inst.op);
    const double currentStrength = inst.cell->driveStrength();

    // Upstream penalty of adding input capacitance: only drivers that are
    // themselves timing critical pay full price — loading a slack-rich
    // driver merely consumes its slack.
    double penaltyPerCap = 0.0;
    for (NetIndex in : inst.inputs) {
      const double r = driverResistance(in);
      const double driverSlack = analyzer_.netSlack(in);
      const double criticality =
          driverSlack < 0.0 ? 1.0 : (driverSlack < 0.05 ? 0.5 : 0.15);
      penaltyPerCap = std::max(penaltyPerCap, r * criticality);
    }
    double oldCap = 0.0;
    for (const liberty::Pin* p : inst.cell->inputPins()) {
      oldCap += p->capacitance;
    }

    const Cell* best = nullptr;
    double bestBenefit = kMinBenefit;
    double oldDelay = 0.0;
    double oldTrans = 0.0;
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const double load = analyzer_.netLoad(inst.outputs[slot]);
      const auto [d, t] = delayAndTransitionAt(inst, *inst.cell, slot, load);
      oldDelay = std::max(oldDelay, d);
      oldTrans = std::max(oldTrans, t);
    }
    for (const Cell* c : fam) {
      if (c->driveStrength() <= currentStrength) continue;
      if (!candidateLegal(inst, *c)) continue;
      double newDelay = 0.0;
      double newTrans = 0.0;
      double newCap = 0.0;
      for (const liberty::Pin* p : c->inputPins()) newCap += p->capacitance;
      for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
        const double load = analyzer_.netLoad(inst.outputs[slot]);
        const auto [d, t] = delayAndTransitionAt(inst, *c, slot, load);
        newDelay = std::max(newDelay, d);
        newTrans = std::max(newTrans, t);
      }
      // A sharper output edge also speeds up the downstream stage; weight it
      // with the technology's typical slew-to-delay sensitivity.
      const double benefit = (oldDelay - newDelay) +
                             0.25 * (oldTrans - newTrans) -
                             penaltyPerCap * (newCap - oldCap);
      if (benefit > bestBenefit) {
        bestBenefit = benefit;
        best = c;
      }
    }
    if (best != nullptr) {
      resize(i, best);
      noDownsize_.insert(i);
      ++changes;
    }
  }
  return changes;
}

std::size_t Session::recoverArea() {
  std::size_t changes = 0;
  for (InstIndex i = 0; i < design_.instanceCount(); ++i) {
    const netlist::Instance& inst = design_.instance(i);
    if (!inst.alive || inst.cell == nullptr) continue;
    if (noDownsize_.contains(i)) continue;
    const auto& fam = synth_.family(inst.op);
    const double currentStrength = inst.cell->driveStrength();
    if (fam.empty() || fam.front() == inst.cell) continue;

    double slack = kInf;
    double oldDelay = 0.0;
    for (NetIndex out : inst.outputs) {
      slack = std::min(slack, analyzer_.netSlack(out));
    }
    if (slack == kInf || slack < options_.areaRecoveryMargin) continue;
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      oldDelay = std::max(
          oldDelay, worstDelayAt(inst, *inst.cell, slot,
                                 analyzer_.netLoad(inst.outputs[slot])));
    }

    // Largest downsize that keeps the margin and stays legal.
    const Cell* best = nullptr;
    for (const Cell* c : fam) {
      if (c->driveStrength() >= currentStrength) break;
      if (!candidateLegal(inst, *c)) continue;
      double newDelay = 0.0;
      for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
        newDelay = std::max(
            newDelay, worstDelayAt(inst, *c, slot,
                                   analyzer_.netLoad(inst.outputs[slot])));
      }
      if (slack - (newDelay - oldDelay) >= options_.areaRecoveryMargin) {
        best = c;
        break;  // smallest legal size wins (area first)
      }
    }
    if (best != nullptr && best->area() < inst.cell->area()) {
      resize(i, best);
      ++changes;
    }
  }
  return changes;
}

void Session::optimize() {
  for (std::size_t pass = 0; pass < options_.maxPasses; ++pass) {
    result_.passes = pass + 1;
    // Drain the previous pass's edits (or full-analyze when incremental
    // updates are disabled). Either way every pass starts from timing
    // state identical to a from-scratch analysis.
    if (!refreshTiming()) return;  // combinational cycle: give up
    analyzedNets_ = design_.netCount();

    std::size_t changes = fixFanout();
    changes += fixElectrical();
    // Structural edits (buffer insertion) invalidate the timing annotation;
    // defer timing/area moves to the next pass so they act on fresh data.
    const bool structuralChange = design_.netCount() > analyzedNets_;
    if (!structuralChange) {
      if (analyzer_.worstSlack() < 0.0) {
        changes += improveTiming();
      } else if (changes == 0) {
        changes += recoverArea();
      }
    }
    if (changes == 0) break;
  }
  refreshTiming();
}

void Session::finalize() {
  result_.worstSlack = analyzer_.worstSlack();
  result_.tns = analyzer_.totalNegativeSlack();
  result_.timingMet = analyzer_.met();
  result_.area = design_.totalArea();

  // Residual violation census.
  std::size_t violations = 0;
  for (InstIndex i = 0; i < design_.instanceCount(); ++i) {
    const netlist::Instance& inst = design_.instance(i);
    if (!inst.alive || inst.cell == nullptr) continue;
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const NetIndex out = inst.outputs[slot];
      const double load = analyzer_.netLoad(out);
      if (load > maxLoadOf(*inst.cell, slot) * (1.0 + 1e-9)) ++violations;
      if (load < minLoadOf(*inst.cell, slot) * (1.0 - 1e-9)) ++violations;
      if (analyzer_.netSlew(out) > netSlewLimit(out) * (1.0 + 1e-9)) {
        ++violations;
      }
      if (!slewsAccepted(inst, *inst.cell, slot)) ++violations;
    }
  }
  result_.violations = violations;
  result_.legal = violations == 0;
}

}  // namespace

bool rebindDesign(Design& design, const liberty::Library& library) {
  // Verify first so failure leaves the design untouched.
  for (const netlist::Instance& inst : design.instances()) {
    if (inst.alive && inst.cell != nullptr &&
        library.findCell(inst.cell->name()) == nullptr) {
      return false;
    }
  }
  for (InstIndex i = 0; i < design.instanceCount(); ++i) {
    const netlist::Instance& inst = design.instance(i);
    if (!inst.alive || inst.cell == nullptr) continue;
    design.bindCell(i, library.findCell(inst.cell->name()));
  }
  return true;
}

SynthesisResult Synthesizer::run(const Design& subject,
                                 const sta::ClockSpec& clock,
                                 const SynthesisOptions& options) const {
  SynthesisResult result;
  result.design = subject;  // work on a copy
  Session session(*this, constraints_, result.design, clock, options, result);
  if (!session.mapInitial()) {
    result.timingMet = false;
    result.legal = false;
    return result;
  }
  session.optimize();
  session.finalize();
  return result;
}

std::optional<double> Synthesizer::findMinPeriod(
    const Design& subject, sta::ClockSpec clock, double lo, double hi,
    double tolerance, const SynthesisOptions& options) const {
  auto feasible = [&](double period) {
    clock.period = period;
    return run(subject, clock, options).success();
  };
  if (!feasible(hi)) return std::nullopt;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace sct::synth
