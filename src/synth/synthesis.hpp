#pragma once
// Timing-driven technology mapping, gate sizing and buffering under tuned
// per-pin slew/load windows. This is the synthesis substrate of the
// reproduction: it implements exactly the mechanisms whose side effects the
// paper measures — drive-strength selection, buffer insertion for signal
// integrity, decomposition of unavailable functions, and area recovery at
// relaxed timing.

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"
#include "tuning/compiled_constraints.hpp"
#include "tuning/restriction.hpp"

namespace sct::synth {

struct SynthesisOptions {
  std::size_t maxPasses = 60;       ///< outer fix/size/recover iterations
  std::size_t maxFanout = 16;       ///< split nets with more sinks
  double maxSlew = 0.55;            ///< global transition limit [ns]
  double areaRecoveryMargin = 0.05; ///< slack to preserve when downsizing [ns]
  /// Refresh timing between passes via incremental STA updates (bit-identical
  /// to a from-scratch analysis). false forces a full re-analysis per pass —
  /// the pre-incremental behaviour, kept as a benchmark baseline.
  bool incrementalSta = true;
  /// Answer window-legality queries through the slot-interned
  /// CompiledConstraintView (bit-identical results). false forces the
  /// two-map-lookup string path, kept as a benchmark baseline.
  bool compiledConstraintWindows = true;
};

struct SynthesisResult {
  netlist::Design design;  ///< mapped (and possibly restructured) netlist
  bool timingMet = false;
  bool legal = false;  ///< no residual window/electrical violations
  double worstSlack = 0.0;
  double tns = 0.0;
  double area = 0.0;
  std::size_t passes = 0;
  std::size_t buffersInserted = 0;
  std::size_t decomposed = 0;
  std::size_t patternRewrites = 0;  ///< B-cell / MUX4 pattern matches
  std::size_t resizes = 0;
  std::size_t violations = 0;  ///< residual violation count

  [[nodiscard]] bool success() const noexcept { return timingMet && legal; }
  [[nodiscard]] std::map<std::string, std::size_t> cellUsage() const {
    return design.cellUsage();
  }
};

/// Rebinds every mapped instance to the same-named cell of another library
/// (e.g. the SS corner library for signoff of a TT-synthesized design).
/// Returns false and leaves the design untouched when a cell is missing.
bool rebindDesign(netlist::Design& design, const liberty::Library& library);

class Synthesizer {
 public:
  /// constraints may be null (untuned baseline library).
  Synthesizer(const liberty::Library& library,
              const tuning::LibraryConstraints* constraints = nullptr);

  /// Maps and optimizes a copy of the subject graph against the clock.
  [[nodiscard]] SynthesisResult run(const netlist::Design& subject,
                                    const sta::ClockSpec& clock,
                                    const SynthesisOptions& options = {}) const;

  /// Smallest clock period (within `tolerance` ns) at which run() succeeds,
  /// by bisection; mirrors the paper's "reduce the clock period until the
  /// synthesis fails" protocol. Returns nullopt when even `hi` fails.
  [[nodiscard]] std::optional<double> findMinPeriod(
      const netlist::Design& subject, sta::ClockSpec clock, double lo,
      double hi, double tolerance = 0.02,
      const SynthesisOptions& options = {}) const;

  [[nodiscard]] const liberty::Library& library() const noexcept {
    return library_;
  }

  /// Usable (not tuned-away) cells of a function family, ascending strength.
  [[nodiscard]] const std::vector<const liberty::Cell*>& family(
      netlist::PrimOp op) const;

  /// Slot-interned constraint view over this synthesizer's library; nullptr
  /// when the library is unconstrained.
  [[nodiscard]] const tuning::CompiledConstraintView* compiledConstraints()
      const noexcept {
    return compiled_ ? &*compiled_ : nullptr;
  }

 private:
  const liberty::Library& library_;
  const tuning::LibraryConstraints* constraints_;
  std::optional<tuning::CompiledConstraintView> compiled_;
  /// Per-PrimOp usable family, ascending drive strength.
  std::map<netlist::PrimOp, std::vector<const liberty::Cell*>> families_;
};

}  // namespace sct::synth
