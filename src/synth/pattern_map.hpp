#pragma once
// Local pattern mapping: absorbs single-fanout inverters into B-variant
// cells (NAND2B / NOR2B — NAND/NOR with one internally inverted input) and
// collapses 2-level mux trees into MUX4. This is the piece of technology
// mapping that makes the Fig. 9 usage histograms realistic: the paper's
// synthesized design leans heavily on NR2B_x cells.

#include "synth/decompose.hpp"

namespace sct::synth {

struct PatternStats {
  std::size_t nandB = 0;
  std::size_t norB = 0;
  std::size_t mux4 = 0;
  std::size_t inverterAbsorbed = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return nandB + norB + mux4;
  }
};

/// Rewrites matching patterns in place. `usable` gates which target ops may
/// be produced (a tuned library may have no usable B cells). Returns the
/// number of rewrites per pattern. Deterministic.
PatternStats mapPatterns(netlist::Design& design, const OpUsable& usable);

}  // namespace sct::synth
