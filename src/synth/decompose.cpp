#include "synth/decompose.hpp"

#include <stdexcept>

namespace sct::synth {

using netlist::Design;
using netlist::InstIndex;
using netlist::kNoNet;
using netlist::NetIndex;
using netlist::PrimOp;

namespace {

/// Emits replacement logic using only usable ops. Each emit* call creates
/// exactly one top-level gate (optionally driving an existing target net)
/// and may recurse for its operands. Throws Unmappable when the base set
/// (inverter-ish + nand/nor-ish) is unavailable.
struct Unmappable : std::runtime_error {
  Unmappable() : std::runtime_error("no usable decomposition") {}
};

class Emitter {
 public:
  Emitter(Design& design, const OpUsable& usable)
      : d_(design), usable_(usable) {}

  NetIndex gate(PrimOp op, const std::vector<NetIndex>& ins,
                NetIndex target = kNoNet) {
    const NetIndex out =
        target != kNoNet ? target : d_.addNet(d_.freshName("dec"));
    d_.addInstance(d_.freshName("dec_u"), op, ins, {out});
    return out;
  }

  NetIndex inv(NetIndex a, NetIndex target = kNoNet) {
    if (usable_(PrimOp::kInv)) return gate(PrimOp::kInv, {a}, target);
    if (usable_(PrimOp::kNand2)) return gate(PrimOp::kNand2, {a, a}, target);
    if (usable_(PrimOp::kNor2)) return gate(PrimOp::kNor2, {a, a}, target);
    throw Unmappable{};
  }

  NetIndex buf(NetIndex a, NetIndex target = kNoNet) {
    if (usable_(PrimOp::kBuf)) return gate(PrimOp::kBuf, {a}, target);
    return inv(inv(a), target);
  }

  NetIndex and2(NetIndex a, NetIndex b, NetIndex target = kNoNet) {
    if (usable_(PrimOp::kAnd2)) return gate(PrimOp::kAnd2, {a, b}, target);
    if (usable_(PrimOp::kNand2)) {
      return inv(gate(PrimOp::kNand2, {a, b}), target);
    }
    if (usable_(PrimOp::kNor2)) {
      return gate(PrimOp::kNor2, {inv(a), inv(b)}, target);
    }
    throw Unmappable{};
  }

  NetIndex or2(NetIndex a, NetIndex b, NetIndex target = kNoNet) {
    if (usable_(PrimOp::kOr2)) return gate(PrimOp::kOr2, {a, b}, target);
    if (usable_(PrimOp::kNor2)) return inv(gate(PrimOp::kNor2, {a, b}), target);
    if (usable_(PrimOp::kNand2)) {
      return gate(PrimOp::kNand2, {inv(a), inv(b)}, target);
    }
    throw Unmappable{};
  }

  NetIndex nand2(NetIndex a, NetIndex b, NetIndex target = kNoNet) {
    if (usable_(PrimOp::kNand2)) return gate(PrimOp::kNand2, {a, b}, target);
    return inv(and2(a, b, kNoNet), target);
  }

  NetIndex nor2(NetIndex a, NetIndex b, NetIndex target = kNoNet) {
    if (usable_(PrimOp::kNor2)) return gate(PrimOp::kNor2, {a, b}, target);
    return inv(or2(a, b, kNoNet), target);
  }

  NetIndex xor2(NetIndex a, NetIndex b, NetIndex target = kNoNet) {
    if (usable_(PrimOp::kXor2)) return gate(PrimOp::kXor2, {a, b}, target);
    if (usable_(PrimOp::kXnor2)) {
      return inv(gate(PrimOp::kXnor2, {a, b}), target);
    }
    // 4-NAND network.
    const NetIndex nab = nand2(a, b);
    return nand2(nand2(a, nab), nand2(b, nab), target);
  }

  NetIndex xnor2(NetIndex a, NetIndex b, NetIndex target = kNoNet) {
    if (usable_(PrimOp::kXnor2)) return gate(PrimOp::kXnor2, {a, b}, target);
    return inv(xor2(a, b), target);
  }

  NetIndex mux2(NetIndex d0, NetIndex d1, NetIndex s, NetIndex target = kNoNet) {
    if (usable_(PrimOp::kMux2)) return gate(PrimOp::kMux2, {d0, d1, s}, target);
    return nand2(nand2(d0, inv(s)), nand2(d1, s), target);
  }

  /// Balanced AND/OR of 3-4 operands built from 2-input pieces.
  NetIndex andN(const std::vector<NetIndex>& ins, NetIndex target) {
    NetIndex acc = and2(ins[0], ins[1]);
    for (std::size_t i = 2; i + 1 < ins.size(); ++i) acc = and2(acc, ins[i]);
    return and2(acc, ins.back(), target);
  }
  NetIndex orN(const std::vector<NetIndex>& ins, NetIndex target) {
    NetIndex acc = or2(ins[0], ins[1]);
    for (std::size_t i = 2; i + 1 < ins.size(); ++i) acc = or2(acc, ins[i]);
    return or2(acc, ins.back(), target);
  }

  Design& d_;
  const OpUsable& usable_;
};

}  // namespace

bool isDecomposable(PrimOp op) noexcept {
  switch (op) {
    case PrimOp::kConst0:
    case PrimOp::kConst1:
    case PrimOp::kDff:
    case PrimOp::kDffR:
      return false;  // base cases: must exist in the library
    default:
      return true;
  }
}

bool decomposeInstance(Design& design, InstIndex instance,
                       const OpUsable& usable) {
  const netlist::Instance inst = design.instance(instance);  // copy
  if (!inst.alive || !isDecomposable(inst.op)) return false;

  design.removeInstance(instance);
  Emitter e(design, usable);
  const auto& in = inst.inputs;
  const auto& out = inst.outputs;
  try {
    switch (inst.op) {
      case PrimOp::kInv:
        e.inv(in[0], out[0]);
        break;
      case PrimOp::kBuf:
        e.buf(in[0], out[0]);
        break;
      case PrimOp::kNand2:
        e.nand2(in[0], in[1], out[0]);
        break;
      case PrimOp::kNand2B:
        e.nand2(in[0], e.inv(in[1]), out[0]);
        break;
      case PrimOp::kNor2B:
        e.nor2(in[0], e.inv(in[1]), out[0]);
        break;
      case PrimOp::kNor2:
        e.nor2(in[0], in[1], out[0]);
        break;
      case PrimOp::kAnd2:
        e.and2(in[0], in[1], out[0]);
        break;
      case PrimOp::kOr2:
        e.or2(in[0], in[1], out[0]);
        break;
      case PrimOp::kNand3:
        e.inv(e.and2(e.and2(in[0], in[1]), in[2]), out[0]);
        break;
      case PrimOp::kNand4:
        e.inv(e.and2(e.and2(in[0], in[1]), e.and2(in[2], in[3])), out[0]);
        break;
      case PrimOp::kNor3:
        e.inv(e.or2(e.or2(in[0], in[1]), in[2]), out[0]);
        break;
      case PrimOp::kNor4:
        e.inv(e.or2(e.or2(in[0], in[1]), e.or2(in[2], in[3])), out[0]);
        break;
      case PrimOp::kAnd3:
      case PrimOp::kAnd4:
        e.andN(in, out[0]);
        break;
      case PrimOp::kOr3:
      case PrimOp::kOr4:
        e.orN(in, out[0]);
        break;
      case PrimOp::kXor2:
        e.xor2(in[0], in[1], out[0]);
        break;
      case PrimOp::kXnor2:
        e.xnor2(in[0], in[1], out[0]);
        break;
      case PrimOp::kMux2:
        e.mux2(in[0], in[1], in[2], out[0]);
        break;
      case PrimOp::kMux4:
        // out = s1 ? (s0 ? d3 : d2) : (s0 ? d1 : d0)
        e.mux2(e.mux2(in[0], in[1], in[4]), e.mux2(in[2], in[3], in[4]),
               in[5], out[0]);
        break;
      case PrimOp::kHalfAdder:
        e.xor2(in[0], in[1], out[0]);
        e.and2(in[0], in[1], out[1]);
        break;
      case PrimOp::kFullAdder: {
        const NetIndex axb = e.xor2(in[0], in[1]);
        e.xor2(axb, in[2], out[0]);
        e.or2(e.and2(in[0], in[1]), e.and2(in[2], axb), out[1]);
        break;
      }
      case PrimOp::kDffE: {
        // Enable flop as recirculating mux + plain flop (Q feeds back).
        const PrimOp ff =
            usable(PrimOp::kDffR) ? PrimOp::kDffR : PrimOp::kDff;
        if (!usable(ff)) throw Unmappable{};
        const NetIndex d = e.mux2(out[0], in[0], in[1]);
        design.addInstance(design.freshName("dec_reg"), ff, {d}, {out[0]});
        break;
      }
      default:
        throw Unmappable{};
    }
  } catch (const Unmappable&) {
    // Restore the original instance.
    design.addInstance(inst.name, inst.op, inst.inputs, inst.outputs);
    return false;
  }
  return true;
}

long decomposeUnusable(Design& design, const OpUsable& usable) {
  long rewritten = 0;
  // New instances are appended during rewriting; only scan the original
  // range, then re-scan appended ones until a fixed point (a rewrite only
  // emits usable ops, so one extra sweep suffices in practice).
  bool failed = false;
  for (std::size_t pass = 0; pass < 4; ++pass) {
    bool any = false;
    const std::size_t count = design.instanceCount();
    for (InstIndex i = 0; i < count; ++i) {
      const netlist::Instance& inst = design.instance(i);
      if (!inst.alive || usable(inst.op)) continue;
      if (decomposeInstance(design, i, usable)) {
        ++rewritten;
        any = true;
      } else {
        failed = true;
      }
    }
    if (!any) break;
  }
  return failed ? -1 : rewritten;
}

}  // namespace sct::synth
