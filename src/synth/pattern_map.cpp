#include "synth/pattern_map.hpp"

namespace sct::synth {

using netlist::Design;
using netlist::InstIndex;
using netlist::kNoInst;
using netlist::NetIndex;
using netlist::PrimOp;

namespace {

/// The single-fanout inverter driving `net`, if any (and the net is not
/// externally observed).
InstIndex singleFanoutInverter(const Design& design, NetIndex net) {
  const netlist::Net& n = design.net(net);
  if (n.isPrimaryOutput || n.sinks.size() != 1 || n.driver == kNoInst) {
    return kNoInst;
  }
  const netlist::Instance& driver = design.instance(n.driver);
  return (driver.alive && driver.op == PrimOp::kInv) ? n.driver : kNoInst;
}

/// Same for a single-fanout MUX2.
InstIndex singleFanoutMux(const Design& design, NetIndex net) {
  const netlist::Net& n = design.net(net);
  if (n.isPrimaryOutput || n.sinks.size() != 1 || n.driver == kNoInst) {
    return kNoInst;
  }
  const netlist::Instance& driver = design.instance(n.driver);
  return (driver.alive && driver.op == PrimOp::kMux2) ? n.driver : kNoInst;
}

/// Absorbs a single-fanout inverter on one input of a commutative 2-input
/// gate into the matching B-variant cell. Pin B of the B cell is the
/// internally inverted one, so:
///   NAND2(x, !y) = NAND2B(A=x, B=y)      NOR2(x, !y) = NOR2B(A=x, B=y)
///   AND2(x, !y)  = NOR2B(A=y, B=x)       OR2(x, !y)  = NAND2B(A=y, B=x)
/// (the last two by De Morgan: x & !y = !(y | !x), x | !y = !(y & !x)).
bool absorbInverter(Design& design, InstIndex gate, PatternStats& stats) {
  const netlist::Instance inst = design.instance(gate);  // copy
  for (std::uint32_t slot : {1u, 0u}) {
    const InstIndex invIndex = singleFanoutInverter(design, inst.inputs[slot]);
    if (invIndex == kNoInst || invIndex == gate) continue;
    const NetIndex invInput = design.instance(invIndex).inputs[0];
    const NetIndex other = inst.inputs[1 - slot];
    if (invInput == other) continue;  // would alias both pins oddly; skip

    PrimOp bOp;
    NetIndex pinA;
    NetIndex pinB;
    switch (inst.op) {
      case PrimOp::kNand2:
        bOp = PrimOp::kNand2B;
        pinA = other;
        pinB = invInput;
        break;
      case PrimOp::kNor2:
        bOp = PrimOp::kNor2B;
        pinA = other;
        pinB = invInput;
        break;
      case PrimOp::kAnd2:
        bOp = PrimOp::kNor2B;
        pinA = invInput;
        pinB = other;
        break;
      case PrimOp::kOr2:
        bOp = PrimOp::kNand2B;
        pinA = invInput;
        pinB = other;
        break;
      default:
        return false;
    }
    const NetIndex out = inst.outputs[0];
    design.removeInstance(gate);
    design.removeInstance(invIndex);
    design.addInstance(design.freshName("pm"), bOp, {pinA, pinB}, {out});
    ++stats.inverterAbsorbed;
    if (bOp == PrimOp::kNand2B) {
      ++stats.nandB;
    } else {
      ++stats.norB;
    }
    return true;
  }
  return false;
}

bool collapseMux4(Design& design, InstIndex gate, PatternStats& stats) {
  const netlist::Instance inst = design.instance(gate);  // copy
  const InstIndex loIndex = singleFanoutMux(design, inst.inputs[0]);
  const InstIndex hiIndex = singleFanoutMux(design, inst.inputs[1]);
  if (loIndex == kNoInst || hiIndex == kNoInst || loIndex == hiIndex) {
    return false;
  }
  const netlist::Instance& lo = design.instance(loIndex);
  const netlist::Instance& hi = design.instance(hiIndex);
  if (lo.inputs[2] != hi.inputs[2]) return false;  // different low selects
  const NetIndex s0 = lo.inputs[2];
  const NetIndex s1 = inst.inputs[2];
  const NetIndex out = inst.outputs[0];
  const NetIndex d0 = lo.inputs[0];
  const NetIndex d1 = lo.inputs[1];
  const NetIndex d2 = hi.inputs[0];
  const NetIndex d3 = hi.inputs[1];
  design.removeInstance(gate);
  design.removeInstance(loIndex);
  design.removeInstance(hiIndex);
  // out = s1 ? (s0 ? d3 : d2) : (s0 ? d1 : d0), matching the 2-level tree.
  design.addInstance(design.freshName("pm"), PrimOp::kMux4,
                     {d0, d1, d2, d3, s0, s1}, {out});
  ++stats.mux4;
  return true;
}

}  // namespace

PatternStats mapPatterns(Design& design, const OpUsable& usable) {
  PatternStats stats;
  const bool canNandB = usable(PrimOp::kNand2B);
  const bool canNorB = usable(PrimOp::kNor2B);
  const bool canMux4 = usable(PrimOp::kMux4);
  if (!canNandB && !canNorB && !canMux4) return stats;

  bool changed = true;
  for (int pass = 0; pass < 4 && changed; ++pass) {
    changed = false;
    const std::size_t count = design.instanceCount();
    for (InstIndex i = 0; i < count; ++i) {
      const netlist::Instance& inst = design.instance(i);
      if (!inst.alive) continue;
      if ((inst.op == PrimOp::kNand2 && canNandB) ||
          (inst.op == PrimOp::kNor2 && canNorB) ||
          (inst.op == PrimOp::kAnd2 && canNorB) ||
          (inst.op == PrimOp::kOr2 && canNandB)) {
        changed |= absorbInverter(design, i, stats);
      } else if (canMux4 && inst.op == PrimOp::kMux2) {
        changed |= collapseMux4(design, i, stats);
      }
    }
  }
  return stats;
}

}  // namespace sct::synth
