#pragma once
// Subject-graph rewrites: re-expresses a primitive with a network of simpler
// primitives. Used by the mapper when library tuning leaves a function
// family without any usable cell (the paper, section VII.A: "the synthesis
// process can either use a combination of available cells to recreate the
// logic function, or use a higher drive strength").

#include <functional>

#include "netlist/netlist.hpp"

namespace sct::synth {

/// Predicate telling the decomposer which primitive ops have at least one
/// usable library cell.
using OpUsable = std::function<bool(netlist::PrimOp)>;

/// True when `op` can be rewritten into other primitives at all.
[[nodiscard]] bool isDecomposable(netlist::PrimOp op) noexcept;

/// Rewrites the instance into a network of usable primitives, preserving
/// logic function and connectivity. The original instance is removed. New
/// instances use ops for which usable(op) is true; returns false (leaving
/// the design unchanged) when no such rewrite exists.
bool decomposeInstance(netlist::Design& design, netlist::InstIndex instance,
                       const OpUsable& usable);

/// Rewrites every alive instance whose op is not usable. Returns the number
/// of instances rewritten, or -1 if some instance could not be rewritten.
long decomposeUnusable(netlist::Design& design, const OpUsable& usable);

}  // namespace sct::synth
