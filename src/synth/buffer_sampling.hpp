#pragma once
// Sampling-based post-synthesis buffer insertion (post-silicon scenario
// support): candidate sites are the highest-sigma nets on the statistically
// worst paths; each candidate is evaluated by shielding the critical sink —
// every other sink moves behind a small buffer, cutting the load (and thus
// both delay and mismatch sensitivity) of the critical stage. A candidate is
// accepted only when the Monte-Carlo design yield strictly improves, or the
// worst-path sigma shrinks at equal yield. Evaluation runs on a cloned
// design through the incremental STA path (notifyBufferInsert /
// notifyReconnect + update), never mutating the input netlist.

#include <cstdint>
#include <vector>

#include "charlib/characterizer.hpp"
#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"
#include "statlib/stat_library.hpp"
#include "tuning/restriction.hpp"

namespace sct::synth {

struct BufferSamplingOptions {
  std::size_t maxCandidates = 8;  ///< sigma-ranked nets considered
  std::size_t maxInsertions = 4;  ///< accepted buffers cap
  std::size_t trials = 64;        ///< MC die instances per evaluation
  std::uint64_t seed = 99;
  double minYieldGain = 0.0;  ///< required yield delta beyond equality
  charlib::ProcessCorner corner = charlib::ProcessCorner::typical();
};

struct BufferSamplingResult {
  netlist::Design design;     ///< input design with accepted buffers
  std::size_t evaluated = 0;  ///< candidate insertions sampled
  std::size_t inserted = 0;   ///< candidates accepted
  double yieldBefore = 0.0;   ///< MC design yield of the input design
  double yieldAfter = 0.0;
  double worstPathSigmaBefore = 0.0;  ///< max path sigma, eq. (10) [ns]
  double worstPathSigmaAfter = 0.0;
};

/// Runs the sampling pass over a mapped design. `constraints` may be null
/// (baseline library). Deterministic: candidate order is (sigma desc, net
/// index asc) and all MC streams are counter-based from `options.seed`.
[[nodiscard]] BufferSamplingResult sampleBufferInsertion(
    const netlist::Design& mapped, const liberty::Library& library,
    const statlib::StatLibrary& statLibrary,
    const charlib::Characterizer& characterizer, const sta::ClockSpec& clock,
    const tuning::LibraryConstraints* constraints,
    const BufferSamplingOptions& options = {});

}  // namespace sct::synth
