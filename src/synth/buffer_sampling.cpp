#include "synth/buffer_sampling.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "numeric/rng.hpp"
#include "parallel/parallel.hpp"
#include "synth/synthesis.hpp"
#include "variation/monte_carlo.hpp"
#include "variation/path_stats.hpp"

namespace sct::synth {
namespace {

constexpr double kSlackEps = 1e-12;

/// Yield + worst-path-sigma metric of one analyzed design state.
struct Metric {
  double yield = 1.0;
  double worstPathSigma = 0.0;
};

/// MC design yield over endpoint worst paths: fraction of dies (trials)
/// where every path meets its required time. Same trial-stream structure as
/// PathMonteCarlo::simulate with per-path children of the local stream, so
/// the value is bit-identical for any thread count.
double mcDesignYield(const charlib::Characterizer& characterizer,
                     const std::vector<sta::TimingPath>& paths,
                     std::size_t trials, std::uint64_t seed,
                     const charlib::ProcessCorner& corner) {
  if (paths.empty() || trials == 0) return 1.0;
  const variation::PathMonteCarlo mc(characterizer);
  const charlib::DelayModel& model = characterizer.model();
  std::vector<std::vector<variation::ResolvedPathStep>> resolved(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    resolved[p] = mc.resolvePath(paths[p]);
  }
  const numeric::Rng master(seed);
  const std::uint64_t globalTag = numeric::Rng::hashTag("global");
  const std::uint64_t localTag = numeric::Rng::hashTag("local");
  std::vector<std::uint8_t> pass(trials, 0);
  parallel::parallelFor(trials, [&](std::size_t t) {
    const numeric::Rng trial = master.child(t);
    numeric::Rng globalRng = trial.child(globalTag);
    const numeric::Rng localBase = trial.child(localTag);
    const double globalFactor = model.drawGlobalFactor(globalRng);
    bool ok = true;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      numeric::Rng localRng = localBase.child(p);
      const double delay =
          mc.evaluateResolved(resolved[p], corner, globalFactor, &localRng);
      if (paths[p].endpoint.required - delay < -kSlackEps) {
        ok = false;
        break;
      }
    }
    pass[t] = ok ? 1u : 0u;
  });
  std::size_t good = 0;
  for (const std::uint8_t p : pass) good += p;
  return static_cast<double>(good) / static_cast<double>(trials);
}

Metric measure(const charlib::Characterizer& characterizer,
               const variation::PathStatistics& stats,
               const std::vector<sta::TimingPath>& paths,
               const BufferSamplingOptions& options) {
  Metric m;
  m.yield = mcDesignYield(characterizer, paths, options.trials, options.seed,
                          options.corner);
  for (const sta::TimingPath& path : paths) {
    m.worstPathSigma =
        std::max(m.worstPathSigma, stats.pathStats(path).sigma);
  }
  return m;
}

/// A candidate insertion site: shield `keep` (the critical sink on the
/// worst-sigma path) by moving every other sink of `net` behind a buffer.
struct Candidate {
  double sigma = 0.0;  ///< driving step's local-mismatch sigma [ns]
  netlist::NetIndex net = netlist::kNoNet;
  netlist::InstIndex keepInst = netlist::kNoInst;
  std::uint32_t keepSlot = 0;
};

std::vector<Candidate> collectCandidates(
    const netlist::Design& design, const variation::PathStatistics& stats,
    const std::vector<sta::TimingPath>& paths,
    const BufferSamplingOptions& options) {
  // Paths in worst-sigma-first order; ties by original (endpoint) order.
  std::vector<std::size_t> order(paths.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> pathSigma(paths.size(), 0.0);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    pathSigma[i] = stats.pathStats(paths[i]).sigma;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return pathSigma[a] > pathSigma[b];
                   });

  std::vector<Candidate> candidates;
  std::vector<netlist::NetIndex> seen;
  for (const std::size_t pi : order) {
    const sta::TimingPath& path = paths[pi];
    for (std::size_t s = 0; s < path.steps.size(); ++s) {
      const sta::PathStep& step = path.steps[s];
      if (step.instance == netlist::kNoInst) continue;
      // The critical sink fed by this step: the next step's instance, or
      // the endpoint register for the last step.
      netlist::InstIndex next = netlist::kNoInst;
      if (s + 1 < path.steps.size()) {
        next = path.steps[s + 1].instance;
      } else {
        next = path.endpoint.instance;
      }
      if (next == netlist::kNoInst) continue;
      for (const netlist::NetIndex out :
           design.instance(step.instance).outputs) {
        const netlist::Net& net = design.net(out);
        if (net.sinks.size() < 2) continue;  // nothing to shield
        const auto hit =
            std::find_if(net.sinks.begin(), net.sinks.end(),
                         [next](const netlist::SinkRef& sink) {
                           return sink.instance == next;
                         });
        if (hit == net.sinks.end()) continue;
        if (std::find(seen.begin(), seen.end(), out) != seen.end()) continue;
        seen.push_back(out);
        candidates.push_back(Candidate{stats.stepStats(step).sigma, out,
                                       hit->instance, hit->inputSlot});
      }
    }
    if (candidates.size() >= 4 * options.maxCandidates) break;
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.sigma != b.sigma) return a.sigma > b.sigma;
                     return a.net < b.net;
                   });
  if (candidates.size() > options.maxCandidates) {
    candidates.resize(options.maxCandidates);
  }
  return candidates;
}

}  // namespace

BufferSamplingResult sampleBufferInsertion(
    const netlist::Design& mapped, const liberty::Library& library,
    const statlib::StatLibrary& statLibrary,
    const charlib::Characterizer& characterizer, const sta::ClockSpec& clock,
    const tuning::LibraryConstraints* constraints,
    const BufferSamplingOptions& options) {
  BufferSamplingResult result;
  result.design = mapped;

  const Synthesizer synth(library, constraints);
  const auto& buffers = synth.family(netlist::PrimOp::kBuf);
  const variation::PathStatistics stats(statLibrary);

  sta::TimingAnalyzer baseAnalyzer(result.design, library, clock);
  if (!baseAnalyzer.analyze()) return result;
  std::vector<sta::TimingPath> basePaths = baseAnalyzer.endpointWorstPaths();
  Metric base = measure(characterizer, stats, basePaths, options);
  result.yieldBefore = base.yield;
  result.worstPathSigmaBefore = base.worstPathSigma;
  result.yieldAfter = base.yield;
  result.worstPathSigmaAfter = base.worstPathSigma;
  // Tuned libraries may leave no usable buffer family; the pass degrades to
  // a no-op rather than synthesizing inverter pairs (those belong to the
  // in-flow fanout fixer, not a post-silicon experiment).
  if (buffers.empty()) return result;
  const liberty::Cell* bufferCell = buffers.front();

  const std::vector<Candidate> candidates =
      collectCandidates(result.design, stats, basePaths, options);

  for (const Candidate& candidate : candidates) {
    if (result.inserted >= options.maxInsertions) break;
    // Candidate indices stay valid across accepted insertions: the clone
    // only appends nets/instances and moves sinks of the candidate net.
    const netlist::Net& net = result.design.net(candidate.net);
    if (net.sinks.size() < 2) continue;  // shrunk by an earlier insertion
    ++result.evaluated;

    netlist::Design trial = result.design;
    sta::TimingAnalyzer analyzer(trial, library, clock);
    if (!analyzer.analyze()) continue;
    // Copy first: reconnect mutates the sink list, and the buffer itself
    // becomes a sink of the candidate net.
    const std::vector<netlist::SinkRef> sinks = trial.net(candidate.net).sinks;
    const netlist::NetIndex out = trial.addNet(trial.freshName("psbn"));
    const netlist::InstIndex ib =
        trial.addInstance(trial.freshName("psbuf"), netlist::PrimOp::kBuf,
                          {candidate.net}, {out});
    trial.bindCell(ib, bufferCell);
    analyzer.notifyBufferInsert(ib);
    for (const netlist::SinkRef& sink : sinks) {
      if (sink.instance == candidate.keepInst &&
          sink.inputSlot == candidate.keepSlot) {
        continue;  // the shielded critical sink keeps its direct connection
      }
      trial.reconnectInput(sink.instance, sink.inputSlot, out);
      analyzer.notifyReconnect(sink.instance, sink.inputSlot, candidate.net);
    }
    if (!analyzer.update()) continue;

    const std::vector<sta::TimingPath> trialPaths =
        analyzer.endpointWorstPaths();
    const Metric after = measure(characterizer, stats, trialPaths, options);
    const bool yieldGain = after.yield > base.yield + options.minYieldGain;
    const bool sigmaGain = after.yield >= base.yield &&
                           after.worstPathSigma < base.worstPathSigma;
    if (!yieldGain && !sigmaGain) continue;

    result.design = std::move(trial);
    base = after;
    ++result.inserted;
    result.yieldAfter = after.yield;
    result.worstPathSigmaAfter = after.worstPathSigma;
  }
  return result;
}

}  // namespace sct::synth
