// Example: full microcontroller tuning report.
//
// Runs the paper's headline experiment end-to-end on the ~20k-gate MCU:
// finds the minimum clock period, synthesizes the baseline, sweeps the five
// tuning methods, and prints a report with the best configuration per
// method — the data behind Fig. 10 for one clock constraint.
//
// Build & run:  ./build/examples/mcu_tuning_report [period_ns]

#include <cstdio>
#include <cstdlib>

#include "core/flow.hpp"

int main(int argc, char** argv) {
  using namespace sct;

  core::TuningFlow flow(core::FlowConfig{});
  std::printf("characterizing %zu cells, building statistical library from "
              "%zu MC instances...\n",
              flow.nominalLibrary().size(), flow.config().mcLibraryCount);
  std::printf("subject: %s with %zu gates\n", flow.subject().name().c_str(),
              flow.subject().gateCount());

  double period = 0.0;
  if (argc > 1) {
    period = std::atof(argv[1]);
  }
  if (period <= 0.0) {
    const auto minPeriod = flow.findMinPeriod();
    if (!minPeriod) {
      std::printf("no feasible period found\n");
      return 1;
    }
    period = *minPeriod;
    std::printf("minimum feasible clock period: %.3f ns (high-performance "
                "constraint)\n",
                period);
  }

  const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
  std::printf("\nbaseline @ %.3f ns: met=%d  area=%.0f um^2  design sigma="
              "%.4f ns  (%zu endpoint paths)\n",
              period, baseline.synthesis.timingMet, baseline.area(),
              baseline.sigma(), baseline.paths.size());

  std::printf("\n%-20s %10s %12s %12s %8s\n", "method", "param",
              "sigma red.", "area inc.", "status");
  std::printf("------------------------------------------------------------"
              "------\n");
  for (tuning::TuningMethod method : tuning::kAllTuningMethods) {
    const auto points = flow.sweepMethod(method, period, baseline);
    const auto* best = core::TuningFlow::bestUnderAreaCap(points, 10.0);
    if (best != nullptr) {
      std::printf("%-20s %10.3g %11.1f%% %11.1f%% %8s\n",
                  std::string(tuning::toString(method)).c_str(),
                  best->parameter, best->sigmaReductionPct,
                  best->areaIncreasePct, "ok");
    } else {
      std::printf("%-20s %10s %12s %12s %8s\n",
                  std::string(tuning::toString(method)).c_str(), "-", "-",
                  "-", "no-fit");
    }
  }
  std::printf("\n(best sigma reduction with area increase < 10%%, the "
              "paper's Fig. 10 selection rule)\n");
  return 0;
}
