// Example: bring-your-own library and design.
//
// Shows the lower-level API without the TuningFlow facade:
//   1. build a custom design with the netlist builder (a 16-bit MAC),
//   2. characterize the library and write/read it in the Liberty-style
//      text format,
//   3. build a statistical library, tune it, synthesize, and inspect the
//      per-pin windows the tuner produced.
//
// Build & run:  ./build/examples/custom_library

#include <cstdio>
#include <sstream>

#include "charlib/characterizer.hpp"
#include "liberty/liberty_io.hpp"
#include "netlist/builder.hpp"
#include "statlib/stat_library.hpp"
#include "synth/synthesis.hpp"
#include "tuning/restriction.hpp"
#include "variation/path_stats.hpp"

int main() {
  using namespace sct;

  // -- 1. custom design: registered 16x16 multiply-accumulate ------------
  netlist::Design design("mac16");
  netlist::NetlistBuilder b(design);
  const netlist::Bus a = b.busDff(b.inputBus("a", 16), netlist::PrimOp::kDffR);
  const netlist::Bus x = b.busDff(b.inputBus("x", 16), netlist::PrimOp::kDffR);
  const netlist::Bus product = b.multiplier(a, x);
  netlist::Bus accQ;
  for (std::size_t i = 0; i < product.size(); ++i) {
    accQ.push_back(design.addNet(design.freshName("acc")));
  }
  const netlist::Bus sum = b.rippleAdder(accQ, product, b.constant(false));
  const netlist::NetIndex enable = b.inputPort("en");
  for (std::size_t i = 0; i < product.size(); ++i) {
    design.addInstance(design.freshName("acc_reg"), netlist::PrimOp::kDffE,
                       {sum[i], enable}, {accQ[i]});
  }
  b.outputBus("acc", accQ);
  std::printf("design '%s': %zu gates (%s)\n", design.name().c_str(),
              design.gateCount(),
              design.validate().empty() ? "valid" : "INVALID");

  // -- 2. characterize + Liberty round trip --------------------------------
  const charlib::Characterizer characterizer;
  liberty::Library nominal =
      characterizer.characterizeNominal(charlib::ProcessCorner::typical());
  const std::string libText = liberty::writeLibraryToString(nominal);
  std::printf("library '%s': %zu cells, %.1f KB in Liberty text form\n",
              nominal.name().c_str(), nominal.size(),
              static_cast<double>(libText.size()) / 1024.0);
  const liberty::Library reparsed = liberty::readLibraryFromString(libText);
  std::printf("round trip: %zu cells re-parsed\n", reparsed.size());

  // -- 3. statistical library + tuning -------------------------------------
  const auto mcLibs = characterizer.characterizeMonteCarlo(
      charlib::ProcessCorner::typical(), 50, 123);
  const statlib::StatLibrary stat = statlib::buildStatLibrary(mcLibs);
  const tuning::TuningConfig tcfg = tuning::TuningConfig::forMethod(
      tuning::TuningMethod::kCellStrengthLoadSlope, 0.05);
  const tuning::LibraryConstraints constraints = tuning::tuneLibrary(stat, tcfg);
  std::printf("\ntuning '%s' with load slope bound %.2f:\n",
              std::string(tuning::toString(tcfg.method)).c_str(),
              tcfg.loadSlopeBound);
  std::printf("  %zu cells constrained, %zu unusable\n", constraints.size(),
              constraints.unusableCellCount());
  for (const char* name : {"IV_1", "IV_8", "ND2_2", "MU2_4"}) {
    const auto window = constraints.window(name, "Z");
    if (window) {
      std::printf("  %-8s window: slew <= %.3f ns, load <= %.4f pF\n", name,
                  window->maxSlew, window->maxLoad);
    }
  }

  // -- 4. synthesize baseline vs tuned and compare --------------------------
  sta::ClockSpec clock;
  clock.period = 4.0;
  const synth::Synthesizer baselineSynth(nominal);
  const synth::Synthesizer tunedSynth(nominal, &constraints);
  const auto baseline = baselineSynth.run(design, clock);
  const auto tuned = tunedSynth.run(design, clock);

  auto sigmaOf = [&](const synth::SynthesisResult& result) {
    sta::TimingAnalyzer sta(result.design, nominal, clock);
    sta.analyze();
    const variation::PathStatistics stats(stat);
    return stats.designStats(sta.endpointWorstPaths()).sigma;
  };
  const double baseSigma = sigmaOf(baseline);
  const double tunedSigma = sigmaOf(tuned);
  std::printf("\n@ %.1f ns: baseline sigma %.4f ns (area %.0f) | tuned sigma "
              "%.4f ns (area %.0f)\n",
              clock.period, baseSigma, baseline.area, tunedSigma, tuned.area);
  if (baseSigma > 0.0) {
    std::printf("sigma reduction %.1f%%, area increase %.1f%%\n",
                100.0 * (baseSigma - tunedSigma) / baseSigma,
                100.0 * (tuned.area - baseline.area) / baseline.area);
  }
  return 0;
}
