// Example: PVT-corner validation of a tuned design (paper section VII.C).
//
// Extracts the critical path of a tuned microcontroller and Monte-Carlo
// simulates it at the fast / typical / slow corners — demonstrating that
// mean and sigma scale by the same factor, so the library tuning performed
// at the typical corner transfers to the other corners.
//
// Build & run:  ./build/examples/corner_validation

#include <cstdio>

#include "core/flow.hpp"
#include "variation/monte_carlo.hpp"

int main() {
  using namespace sct;

  core::FlowConfig config;
  // A reduced MCU keeps this example snappy.
  config.mcu.registers = 16;
  config.mcu.timers = 2;
  config.mcu.dmaChannels = 1;
  config.mcu.gpioWidth = 32;
  config.mcu.cacheTagEntries = 32;
  core::TuningFlow flow(config);

  const double period = flow.findMinPeriod().value_or(5.0);
  std::printf("design: %zu gates, clock %.3f ns\n",
              flow.subject().gateCount(), period);

  const core::DesignMeasurement tuned = flow.synthesizeTuned(
      period,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  std::printf("tuned (sigma ceiling 0.02): met=%d area=%.0f um^2 sigma=%.4f "
              "ns\n\n",
              tuned.synthesis.timingMet, tuned.area(), tuned.sigma());

  // Critical path Monte Carlo across corners.
  const auto paths = flow.tracePaths(tuned.synthesis, period);
  const sta::TimingPath* critical = nullptr;
  for (const auto& path : paths) {
    if (critical == nullptr || path.slack() < critical->slack()) {
      critical = &path;
    }
  }
  if (critical == nullptr || critical->depth() == 0) {
    std::printf("no critical path found\n");
    return 1;
  }
  const std::string endpointLabel =
      sta::endpointName(tuned.synthesis.design, critical->endpoint);
  std::printf("critical path: %zu cells into %s (slack %+.3f ns)\n",
              critical->depth(), endpointLabel.c_str(), critical->slack());

  const variation::PathMonteCarlo mc(flow.characterizer());
  variation::PathMcConfig mcConfig;
  mcConfig.trials = 200;
  mcConfig.corner = charlib::ProcessCorner::typical();
  const auto typical = mc.simulate(*critical, mcConfig);

  std::printf("\n%8s %12s %12s %12s %12s\n", "corner", "mean [ns]",
              "sigma [ns]", "mean/typ", "sigma/typ");
  for (const charlib::ProcessCorner& corner : charlib::ProcessCorner::all()) {
    mcConfig.corner = corner;
    const auto result = mc.simulate(*critical, mcConfig);
    std::printf("%8s %12.4f %12.5f %12.3f %12.3f\n", corner.process.c_str(),
                result.summary.mean, result.summary.sigma,
                result.summary.mean / typical.summary.mean,
                result.summary.sigma / typical.summary.sigma);
  }
  std::printf("\nmean and sigma scale together across corners -> the tuning "
              "transfers to all PVT corners.\n");
  return 0;
}
