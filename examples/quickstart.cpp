// Quickstart: the full library-tuning flow on a small accumulator design.
//
//   1. characterize the 304-cell library (nominal + 50 Monte-Carlo instances)
//   2. build the statistical library (mean/sigma LUTs)
//   3. synthesize a baseline and measure its local-variation sigma
//   4. tune the library with a sigma ceiling and re-synthesize
//   5. compare sigma and area
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/flow.hpp"

int main() {
  using namespace sct;

  core::FlowConfig config;
  config.mcLibraryCount = 50;

  core::TuningFlow flow(config);

  std::printf("== sctune quickstart ==\n");
  std::printf("library: %zu cells (%s)\n", flow.nominalLibrary().size(),
              flow.nominalLibrary().name().c_str());
  std::printf("statistical library: %zu cells from %zu MC instances\n",
              flow.statLibrary().size(), flow.statLibrary().sampleCount());

  // A small subject design instead of the full microcontroller.
  const netlist::Design subject = netlist::generateAccumulator(16);
  std::printf("subject: %s, %zu gates\n", subject.name().c_str(),
              subject.gateCount());

  // Find the minimum feasible clock period, then run 5% above it.
  synth::Synthesizer baselineSynth(flow.nominalLibrary());
  const double minPeriod =
      baselineSynth.findMinPeriod(subject, config.clock, 0.3, 12.0)
          .value_or(2.0);
  const double period = minPeriod * 1.05;
  std::printf("minimum feasible period: %.3f ns -> running at %.3f ns\n",
              minPeriod, period);
  sta::ClockSpec clock = config.clock;
  clock.period = period;
  core::DesignMeasurement baseline =
      flow.measure(baselineSynth.run(subject, clock), period);
  std::printf("\nbaseline @ %.2f ns: met=%d area=%.1f um^2 sigma=%.4f ns "
              "(paths=%zu)\n",
              period, baseline.synthesis.timingMet, baseline.area(),
              baseline.sigma(), baseline.paths.size());

  // Tuned synthesis: sigma ceiling 0.02 ns.
  const tuning::TuningConfig tcfg = tuning::TuningConfig::forMethod(
      tuning::TuningMethod::kSigmaCeiling, 0.02);
  const tuning::LibraryConstraints constraints = flow.tune(tcfg);
  std::printf("\ntuning: %zu cells constrained, %zu unusable\n",
              constraints.size(), constraints.unusableCellCount());

  synth::Synthesizer tunedSynth(flow.nominalLibrary(), &constraints);
  core::DesignMeasurement tuned =
      flow.measure(tunedSynth.run(subject, clock), period);
  std::printf("tuned    @ %.2f ns: met=%d area=%.1f um^2 sigma=%.4f ns\n",
              period, tuned.synthesis.timingMet, tuned.area(), tuned.sigma());

  if (baseline.sigma() > 0.0 && baseline.area() > 0.0) {
    std::printf("\nsigma reduction: %.1f %%   area increase: %.1f %%\n",
                100.0 * (baseline.sigma() - tuned.sigma()) / baseline.sigma(),
                100.0 * (tuned.area() - baseline.area()) / baseline.area());
  }
  return 0;
}
