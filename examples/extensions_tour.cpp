// Example: the extension layers beyond the paper's core experiments —
// hold-time analysis, transition-power statistics and power-metric tuning,
// clock-tree variation analysis, and the serialization formats (statistical
// library, tuned constraints, synthesis script, structural Verilog).
//
// Build & run:  ./build/examples/extensions_tour

#include <cstdio>

#include "clocktree/clock_tree.hpp"
#include "core/flow.hpp"
#include "netlist/analysis.hpp"
#include "netlist/verilog_io.hpp"
#include "power/power_stats.hpp"
#include "statlib/stat_io.hpp"
#include "tuning/constraints_io.hpp"

int main() {
  using namespace sct;

  // Compact flow so the tour runs in seconds.
  core::FlowConfig config;
  config.mcu.registers = 16;
  config.mcu.timers = 2;
  config.mcu.dmaChannels = 1;
  config.mcu.gpioWidth = 32;
  config.mcu.cacheTagEntries = 32;
  core::TuningFlow flow(config);

  const double period = flow.findMinPeriod().value_or(5.0) * 1.05;
  const core::DesignMeasurement design = flow.synthesizeBaseline(period);
  std::printf("design: %zu gates @ %.3f ns (setup wns %+.3f ns)\n",
              design.synthesis.design.gateCount(), period,
              design.synthesis.worstSlack);

  // --- netlist statistics -------------------------------------------------
  const netlist::DesignStats stats =
      netlist::analyzeDesign(design.synthesis.design);
  std::printf("\n[netlist] comb %zu, seq %zu, max fanout %zu, avg fanout "
              "%.2f\n",
              stats.combinational, stats.sequential, stats.maxFanout,
              stats.averageFanout);

  // --- hold analysis -------------------------------------------------------
  sta::ClockSpec clock = flow.config().clock;
  clock.period = period;
  clock.inputDelay = 0.1;  // external hold margin at the inputs
  sta::TimingAnalyzer sta(design.synthesis.design, flow.nominalLibrary(),
                          clock);
  sta.analyze();
  std::printf("\n[hold] worst hold slack %+.4f ns (%s)\n",
              sta.worstHoldSlack(), sta.holdMet() ? "met" : "VIOLATED");

  // --- power ---------------------------------------------------------------
  const power::PowerModel powerModel(flow.characterizer().model());
  const power::DesignPower pwr = power::analyzeDesignPower(
      design.synthesis.design, sta, flow.characterizer(), powerModel, 0.15);
  std::printf("\n[power] dynamic power %.1f uW, sigma %.3f uW over %zu cells "
              "(activity 0.15)\n",
              pwr.meanPower, pwr.sigmaPower, pwr.cells);

  // --- clock tree ----------------------------------------------------------
  const auto tree = clocktree::buildClockTree(
      design.synthesis.design, flow.nominalLibrary(), flow.statLibrary());
  if (tree) {
    std::printf("\n[clock tree] %zu sinks, %zu buffers in %zu levels; "
                "insertion %.3f ns, skew sigma %.4f ns\n",
                tree->sinkCount, tree->bufferCount(), tree->levels.size(),
                tree->insertionDelay(), tree->worstSkewSigma());
  }

  // --- serialization sizes -------------------------------------------------
  const auto constraints = flow.tune(
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  const std::string statText =
      statlib::writeStatLibraryToString(flow.statLibrary());
  const std::string constraintText =
      tuning::writeConstraintsToString(constraints);
  const std::string script = tuning::writeSynthesisScriptToString(
      constraints, flow.nominalLibrary().name());
  const std::string verilog =
      netlist::writeVerilogToString(design.synthesis.design);
  std::printf("\n[artifacts] statistical library %.0f KB | constraints %.0f "
              "KB | synthesis script %.0f KB | gate-level Verilog %.0f KB\n",
              statText.size() / 1024.0, constraintText.size() / 1024.0,
              script.size() / 1024.0, verilog.size() / 1024.0);
  std::printf("\nfirst lines of the synthesis script:\n%.300s...\n",
              script.c_str());
  return 0;
}
